"""Reduction-tree shapes for TSLU/TSQR.

The paper uses two shapes — a binary tree (``O(log2 Tr)``
synchronizations, optimal parallel communication) and a tree of height
one (a single ``Tr``-way merge, which the paper finds to be "an
efficient alternative" on shared memory).  The hybrid shape (flat at
the bottom, binary on top) is the reduction tree of Hadri et al. [14],
which the paper's conclusion singles out for future comparison; it is
included for the tree ablation benchmark.
"""

from __future__ import annotations

import enum

__all__ = ["TreeKind", "reduction_schedule", "tree_height"]


class TreeKind(enum.Enum):
    """Reduction tree shape used by the panel factorization."""

    BINARY = "binary"
    FLAT = "flat"
    HYBRID = "hybrid"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


Merge = tuple[int, list[int]]  # (destination slot, source slots; dst == srcs[0])


def reduction_schedule(
    n_leaves: int,
    kind: TreeKind = TreeKind.BINARY,
    arity: int = 4,
) -> list[list[Merge]]:
    """Merge schedule reducing ``n_leaves`` candidate slots to slot 0.

    Returns a list of levels; each level is a list of independent
    merges ``(dst, srcs)`` combining the candidate sets currently held
    in ``srcs`` into ``dst`` (``dst == srcs[0]``, matching the paper's
    in-place ``B_I`` update).  Levels synchronize: a merge at level
    ``l`` may consume results of level ``l - 1``.

    * ``BINARY``: the paper's Algorithm 1 lines 11-18 — partner at
      distance ``2^(level-1)``; unpaired slots carry over.
    * ``FLAT``: a single merge of all leaves (tree of height 1).
    * ``HYBRID``: flat merges of ``arity`` consecutive slots first,
      then binary above (Hadri et al.).
    """
    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    if n_leaves == 1:
        return []
    if kind is TreeKind.FLAT:
        return [[(0, list(range(n_leaves)))]]
    if kind is TreeKind.HYBRID:
        if arity < 2:
            raise ValueError("hybrid arity must be >= 2")
        first: list[Merge] = []
        leaders: list[int] = []
        for g0 in range(0, n_leaves, arity):
            group = list(range(g0, min(g0 + arity, n_leaves)))
            leaders.append(group[0])
            if len(group) > 1:
                first.append((group[0], group))
        levels = [first] if first else []
        levels.extend(_binary_levels(leaders))
        return levels
    if kind is TreeKind.BINARY:
        return _binary_levels(list(range(n_leaves)))
    raise ValueError(f"unknown tree kind {kind!r}")


def _binary_levels(slots: list[int]) -> list[list[Merge]]:
    """Binary pairing of *slots* (arbitrary slot numbers) down to one."""
    levels: list[list[Merge]] = []
    alive = list(slots)
    while len(alive) > 1:
        level: list[Merge] = []
        nxt: list[int] = []
        for i in range(0, len(alive), 2):
            if i + 1 < len(alive):
                level.append((alive[i], [alive[i], alive[i + 1]]))
            nxt.append(alive[i])
        levels.append(level)
        alive = nxt
    return levels


def tree_height(n_leaves: int, kind: TreeKind = TreeKind.BINARY, arity: int = 4) -> int:
    """Number of synchronizing levels in the reduction."""
    return len(reduction_schedule(n_leaves, kind, arity))
