"""The competitors the paper benchmarks against, built from scratch.

``lapack_lu`` / ``lapack_qr``
    BLAS2 ``getf2``/``geqr2`` (the paper's ``MKL_dgetf2`` /
    ``MKL_dgeqr2``) and blocked right-looking ``getrf``/``geqrf``
    (``MKL_dgetrf`` / ``MKL_dgeqrf`` / the ACML equivalents), as
    numeric drivers and as task graphs for the simulated machine.

``tiled_lu`` / ``tiled_qr``
    PLASMA 2.0-style tile algorithms (Buttari, Langou, Kurzak,
    Dongarra): tiled LU with *incremental pivoting* (``DGETRF`` /
    ``DTSTRF`` / ``DGESSM`` / ``DSSSSM``) and tiled QR (``DGEQRT`` /
    ``DTSQRT`` / ``DORMQR`` / ``DTSMQR``), again both numeric and as
    task graphs.
"""

from repro.baselines.lapack_lu import (
    build_getf2_graph,
    build_getrf_graph,
    getf2_lu,
    getrf_lu,
    getrf_program,
)
from repro.baselines.lapack_qr import (
    build_geqr2_graph,
    build_geqrf_graph,
    geqr2_qr,
    geqrf_program,
    geqrf_qr,
)
from repro.baselines.tiled_lu import (
    TiledLU,
    build_tiled_lu_graph,
    tiled_lu,
    tiled_lu_program,
)
from repro.baselines.tiled_qr import (
    TiledQR,
    build_tiled_qr_graph,
    tiled_qr,
    tiled_qr_program,
)

__all__ = [
    "TiledLU",
    "TiledQR",
    "build_geqr2_graph",
    "build_geqrf_graph",
    "build_getf2_graph",
    "build_getrf_graph",
    "build_tiled_lu_graph",
    "build_tiled_qr_graph",
    "geqr2_qr",
    "geqrf_program",
    "geqrf_qr",
    "getf2_lu",
    "getrf_lu",
    "getrf_program",
    "tiled_lu",
    "tiled_lu_program",
    "tiled_qr",
    "tiled_qr_program",
]
