"""LAPACK-style LU baselines (the paper's MKL/ACML ``dgetf2``/``dgetrf``).

Numeric drivers reuse the sequential kernels; the graph builders model
how a vendor library executes on a multicore machine:

* ``getf2`` — one monolithic BLAS2 task (vendor ``dgetf2`` is
  effectively sequential and memory-bound — the paper's worst
  performer on tall-skinny panels);
* ``getrf`` — fork-join blocked right-looking LU: a *sequential* panel
  task per iteration (this is the point the paper attacks: the panel
  is on the critical path and classic libraries do not parallelize it
  well), followed by row-chunked, column-stripped ``trsm``/``gemm``
  update tasks that scale across cores.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.flops import gemm_flops, lu_flops, trsm_left_flops
from repro.core.layout import BlockLayout
from repro.core.priorities import task_priority
from repro.kernels.lu import getf2, getrf
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram
from repro.runtime.task import Cost, TaskKind

__all__ = [
    "getf2_lu",
    "getrf_lu",
    "build_getf2_graph",
    "build_getrf_graph",
    "getrf_program",
]


def getf2_lu(A: np.ndarray, overwrite: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked BLAS2 LU (vendor ``dgetf2``). Returns ``(lu, piv)``."""
    A = np.array(A, dtype=float, order="C", copy=not overwrite, subok=False)
    piv = getf2(A)
    return A, piv


def getrf_lu(
    A: np.ndarray, b: int = 64, panel: str = "getf2", overwrite: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked right-looking LU (vendor ``dgetrf``). Returns ``(lu, piv)``."""
    A = np.array(A, dtype=float, order="C", copy=not overwrite, subok=False)
    piv = getrf(A, b=b, panel=panel)
    return A, piv


def build_getf2_graph(m: int, n: int, library: str = "mkl") -> TaskGraph:
    """A single monolithic BLAS2 LU task — the ``dgetf2`` baseline."""
    graph = TaskGraph(f"getf2{m}x{n}")
    r = min(m, n)
    graph.add(
        "getf2",
        TaskKind.P,
        Cost(
            "getf2",
            m=m,
            n=n,
            flops=lu_flops(m, n),
            # BLAS2 sweeps the trailing panel once per column.
            words=float(m) * r,
            library=library,
        ),
    )
    return graph


def getrf_program(
    m: int,
    n: int,
    b: int = 64,
    row_chunks: int = 8,
    library: str = "mkl",
    lookahead: int = 0,
    panel_kernel: str = "getrf_panel",
    fork_join: bool = True,
) -> GraphProgram:
    """Fork-join blocked LU as a streaming program (``dgetrf`` baseline).

    One window per iteration: one sequential panel task (default kernel
    ``getrf_panel``: an internally blocked vendor panel, better than
    raw BLAS2 ``getf2`` but still serial and on the critical path),
    then per trailing block column a pivot-apply + ``trsm`` task and
    ``row_chunks`` ``gemm`` tasks (vendor LU updates partition in both
    dimensions, so the update scales; only the panel is serial).
    """
    layout = BlockLayout(m, n, b)
    N = layout.N
    prev_iter_tasks: list[int] = []

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        nonlocal prev_iter_tasks
        K = window
        k0 = K * b
        bk = layout.panel_width(K)
        rows_active = m - k0
        panel_cost = Cost(
            panel_kernel,
            m=rows_active,
            n=bk,
            flops=lu_flops(rows_active, bk),
            words=2.0 * rows_active * bk,
            library=library,
        )
        panel_tid = tracker.add_task(
            graph,
            f"panel[{K}]",
            TaskKind.P,
            panel_cost,
            writes=layout.active_blocks(K, K),
            # Fork-join: classic libraries barrier between iterations —
            # the panel cannot overlap the previous trailing update.
            extra_deps=prev_iter_tasks if fork_join else (),
            priority=task_priority("P", K, lookahead=lookahead, n_cols=N),
            iteration=K,
        )
        prev_iter_tasks = [panel_tid]
        chunks = layout.panel_chunks(K, row_chunks)
        for J in range(K + 1, N):
            j0, j1 = layout.col_range(J)
            nc = j1 - j0
            u_tid = tracker.add_task(
                graph,
                f"U[{K}]{J}",
                TaskKind.U,
                Cost(
                    "trsm_llnu",
                    m=bk,
                    n=nc,
                    k=bk,
                    flops=trsm_left_flops(bk, nc),
                    words=2.0 * bk * nc + bk * bk + 2.0 * bk * nc,
                    library=library,
                ),
                reads=[(K, K)],
                writes=layout.active_blocks(K, J),
                priority=task_priority("U", K, J, lookahead=lookahead, n_cols=N),
                iteration=K,
            )
            prev_iter_tasks.append(u_tid)
            for chunk in chunks:
                r0 = max(chunk.r0, k0 + bk)
                if r0 >= chunk.r1:
                    continue
                rows = chunk.r1 - r0
                s_tid = tracker.add_task(
                    graph,
                    f"S[{K}]{chunk.index},{J}",
                    TaskKind.S,
                    Cost(
                        "gemm",
                        m=rows,
                        n=nc,
                        k=bk,
                        flops=gemm_flops(rows, nc, bk),
                        words=2.0 * rows * nc + rows * bk + bk * nc,
                        library=library,
                    ),
                    reads=[(i, K) for i in range(r0 // b, chunk.b1)] + [(K, J)],
                    writes=[(i, J) for i in range(r0 // b, chunk.b1)],
                    extra_deps=[u_tid],
                    priority=task_priority("S", K, J, lookahead=lookahead, n_cols=N),
                    iteration=K,
                )
                prev_iter_tasks.append(s_tid)

    return GraphProgram(
        f"getrf{m}x{n}b{b}", layout.n_panels, emit, lookahead=lookahead
    )


def build_getrf_graph(
    m: int,
    n: int,
    b: int = 64,
    row_chunks: int = 8,
    library: str = "mkl",
    lookahead: int = 0,
    panel_kernel: str = "getrf_panel",
    fork_join: bool = True,
) -> TaskGraph:
    """Eagerly materialized :func:`getrf_program` (historical interface)."""
    return getrf_program(
        m,
        n,
        b,
        row_chunks=row_chunks,
        library=library,
        lookahead=lookahead,
        panel_kernel=panel_kernel,
        fork_join=fork_join,
    ).materialize()
