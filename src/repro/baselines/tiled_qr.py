"""PLASMA-style tiled QR (Buttari et al.).

The ``PLASMA_dgeqrf`` baseline: tiles of size ``nb``, four kernels —

* ``geqrt``  — QR of the diagonal tile (WY form);
* ``unmqr``  — apply its block reflector to a tile on the right;
* ``tsqrt``  — QR of the updated ``R_kk`` stacked on a *dense* tile
  below (a flat-tree elimination down the tile column);
* ``tsmqr``  — apply a ``tsqrt`` reflector to a tile pair on the right.

Structurally this is CAQR with a flat tree *per tile column* and tile
granularity ``nb`` — lots of small tasks that pipeline well for big
square matrices (where the paper shows PLASMA overtaking CAQR as ``n``
grows) but pay per-task overheads and low kernel efficiency on
tall-skinny matrices (where TSQR wins by up to 6.7x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.analysis.flops import larfb_flops, qr_flops, tpmqrt_flops, tpqrt_ts_flops
from repro.core.layout import BlockLayout
from repro.core.priorities import task_priority
from repro.kernels.qr import extract_v, geqr2, larfb_left_t, larft
from repro.kernels.structured import tpmqrt_left_t, tpqrt
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram
from repro.runtime.task import Cost, TaskKind

__all__ = ["TiledQR", "tiled_qr", "build_tiled_qr_graph", "tiled_qr_program"]


@dataclass
class _LeafOp:
    r0: int
    r1: int
    V: np.ndarray
    T: np.ndarray


@dataclass
class _TsOp:
    top0: int
    bot0: int
    bot1: int
    r: int
    Vb: np.ndarray
    T: np.ndarray


@dataclass
class TiledQR:
    """Factorization state of :func:`tiled_qr` (implicit ``Q``)."""

    packed: np.ndarray
    nb: int
    ops: list[_LeafOp | _TsOp] = field(default_factory=list)

    @property
    def m(self) -> int:
        return self.packed.shape[0]

    @property
    def n(self) -> int:
        return self.packed.shape[1]

    @property
    def R(self) -> np.ndarray:
        r = min(self.packed.shape)
        return np.triu(self.packed[:r, :])

    def apply_qt(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q^T C``."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        for op in self.ops:
            if isinstance(op, _LeafOp):
                larfb_left_t(op.V, op.T, W[op.r0 : op.r1])
            else:
                tpmqrt_left_t(op.Vb, op.T, W[op.top0 : op.top0 + op.r], W[op.bot0 : op.bot1])
        return W[:, 0] if squeeze else W

    def apply_q(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q C``."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        for op in reversed(self.ops):
            if isinstance(op, _LeafOp):
                Cv = W[op.r0 : op.r1]
                Cv -= op.V @ (op.T @ (op.V.T @ Cv))
            else:
                tpmqrt_left_t(
                    op.Vb,
                    op.T,
                    W[op.top0 : op.top0 + op.r],
                    W[op.bot0 : op.bot1],
                    transpose=False,
                )
        return W[:, 0] if squeeze else W

    def q_explicit(self) -> np.ndarray:
        r = min(self.packed.shape)
        E = np.zeros((self.m, r))
        np.fill_diagonal(E, 1.0)
        return self.apply_q(E)

    def solve_ls(self, rhs: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min ||A x - rhs||`` (``m >= n``)."""
        if self.m < self.n:
            raise ValueError("solve_ls requires m >= n")
        y = self.apply_qt(rhs)
        return scipy.linalg.solve_triangular(self.R, y[: self.n])


def tiled_qr(A: np.ndarray, nb: int = 64, overwrite: bool = False) -> TiledQR:
    """Factor ``A`` (``m >= n``) with PLASMA-style tiled QR."""
    A = np.array(A, dtype=float, order="C", copy=not overwrite, subok=False)
    m, n = A.shape
    if m < n:
        raise ValueError(f"tiled_qr requires m >= n, got {A.shape}")
    lay = BlockLayout(m, n, nb)
    out = TiledQR(packed=A, nb=nb)
    for k in range(lay.n_panels):
        r0, r1 = lay.row_range(k)
        c0, c1 = lay.col_range(k)
        akk = A[r0:r1, c0:c1]
        tau = geqr2(akk)
        Tkk = larft(extract_v(akk), tau)
        Vkk = extract_v(akk)
        out.ops.append(_LeafOp(r0=r0, r1=r1, V=Vkk, T=Tkk))
        for j in range(k + 1, lay.N):
            j0, j1 = lay.col_range(j)
            larfb_left_t(Vkk, Tkk, A[r0:r1, j0:j1])
        ck = c1 - c0
        for i in range(k + 1, lay.M):
            s0, s1 = lay.row_range(i)
            # Pair the square R_kk (top ck rows) with the dense tile below.
            Tik = tpqrt(akk[:ck], A[s0:s1, c0:c1])
            Vb = A[s0:s1, c0:c1].copy()
            out.ops.append(_TsOp(top0=r0, bot0=s0, bot1=s1, r=ck, Vb=Vb, T=Tik))
            for j in range(k + 1, lay.N):
                j0, j1 = lay.col_range(j)
                tpmqrt_left_t(Vb, Tik, A[r0 : r0 + ck, j0:j1], A[s0:s1, j0:j1])
    return out


def tiled_qr_program(
    m: int,
    n: int,
    nb: int = 200,
    library: str = "plasma",
    lookahead: int = 1,
) -> GraphProgram:
    """Symbolic PLASMA tiled QR as a streaming program (one window per
    tile column) for the simulator."""
    lay = BlockLayout(m, n, nb)
    N = lay.N

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        k = window
        rk = lay.row_range(k)[1] - lay.row_range(k)[0]
        ck = lay.col_range(k)[1] - lay.col_range(k)[0]
        tracker.add_task(
            graph,
            f"geqrt[{k}]",
            TaskKind.P,
            Cost(
                "geqrt_tile",
                m=rk,
                n=ck,
                flops=qr_flops(rk, ck),
                words=2.0 * rk * ck,
                library=library,
            ),
            writes=[(k, k)],
            priority=task_priority("P", k, lookahead=lookahead, n_cols=N),
            iteration=k,
        )
        for j in range(k + 1, N):
            cj = lay.col_range(j)[1] - lay.col_range(j)[0]
            tracker.add_task(
                graph,
                f"unmqr[{k},{j}]",
                TaskKind.S,
                Cost(
                    "larfb",
                    m=rk,
                    n=cj,
                    k=ck,
                    flops=larfb_flops(rk, cj, ck),
                    words=2.0 * rk * cj + rk * ck,
                    library=library,
                ),
                reads=[(k, k), (k, j)],
                writes=[(k, j)],
                priority=task_priority("S", k, j, lookahead=lookahead, n_cols=N),
                iteration=k,
                col=j,
            )
        for i in range(k + 1, lay.M):
            ri = lay.row_range(i)[1] - lay.row_range(i)[0]
            tracker.add_task(
                graph,
                f"tsqrt[{i},{k}]",
                TaskKind.P,
                Cost(
                    "tpqrt_ts",
                    m=ri,
                    n=ck,
                    k=ck,
                    flops=tpqrt_ts_flops(ri, ck),
                    words=2.0 * ri * ck + ck * ck,
                    library=library,
                ),
                reads=[(k, k), (i, k)],
                writes=[(k, k), (i, k)],
                priority=task_priority("P", k, lookahead=lookahead, n_cols=N),
                iteration=k,
            )
            for j in range(k + 1, N):
                cj = lay.col_range(j)[1] - lay.col_range(j)[0]
                tracker.add_task(
                    graph,
                    f"tsmqr[{i},{k},{j}]",
                    TaskKind.S,
                    Cost(
                        "tsmqr_tile",
                        m=ri,
                        n=cj,
                        k=ck,
                        flops=tpmqrt_flops(ri, cj, ck),
                        words=2.0 * ri * cj + ri * ck,
                        library=library,
                    ),
                    reads=[(i, k), (k, j), (i, j)],
                    writes=[(k, j), (i, j)],
                    priority=task_priority("S", k, j, lookahead=lookahead, n_cols=N),
                    iteration=k,
                    col=j,
                )

    return GraphProgram(
        f"tiled_qr{m}x{n}nb{nb}", lay.n_panels, emit, lookahead=lookahead
    )


def build_tiled_qr_graph(
    m: int,
    n: int,
    nb: int = 200,
    library: str = "plasma",
    lookahead: int = 1,
) -> TaskGraph:
    """Eagerly materialized :func:`tiled_qr_program` (historical interface)."""
    return tiled_qr_program(m, n, nb, library=library, lookahead=lookahead).materialize()
