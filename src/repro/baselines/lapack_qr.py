"""LAPACK-style QR baselines (the paper's MKL/ACML ``dgeqr2``/``dgeqrf``).

The key structural difference from LU: the blocked-QR trailing update
``(I - V T V^T)^T C`` couples *all* active rows through the tall ``V``,
so it can only be split by column strips, not by row chunks.  On a
tall-skinny matrix there are few column strips, so ``dgeqrf``
parallelizes even worse than ``dgetrf`` — which is why the paper's
TSQR speedups (5.3x) exceed the CALU ones (2.3x).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.flops import larfb_flops, qr_flops
from repro.core.layout import BlockLayout
from repro.core.priorities import task_priority
from repro.kernels.qr import geqr2, geqrf
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram
from repro.runtime.task import Cost, TaskKind

__all__ = [
    "geqr2_qr",
    "geqrf_qr",
    "build_geqr2_graph",
    "build_geqrf_graph",
    "geqrf_program",
]


def geqr2_qr(A: np.ndarray, overwrite: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked BLAS2 Householder QR (vendor ``dgeqr2``).

    Returns ``(packed, tau)``.
    """
    A = np.array(A, dtype=float, order="C", copy=not overwrite, subok=False)
    tau = geqr2(A)
    return A, tau


def geqrf_qr(
    A: np.ndarray, b: int = 64, panel: str = "geqr2", overwrite: bool = False
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Blocked Householder QR (vendor ``dgeqrf``). Returns ``(packed, Ts)``."""
    A = np.array(A, dtype=float, order="C", copy=not overwrite, subok=False)
    Ts = geqrf(A, b=b, panel=panel)
    return A, Ts


def build_geqr2_graph(m: int, n: int, library: str = "mkl") -> TaskGraph:
    """A single monolithic BLAS2 QR task — the ``dgeqr2`` baseline."""
    graph = TaskGraph(f"geqr2{m}x{n}")
    r = min(m, n)
    graph.add(
        "geqr2",
        TaskKind.P,
        Cost(
            "geqr2",
            m=m,
            n=n,
            flops=qr_flops(m, n),
            words=float(m) * r,
            library=library,
        ),
    )
    return graph


def geqrf_program(
    m: int,
    n: int,
    b: int = 64,
    library: str = "mkl",
    lookahead: int = 0,
    panel_kernel: str = "geqrf_panel",
    fork_join: bool = True,
) -> GraphProgram:
    """Fork-join blocked QR as a streaming program (``dgeqrf`` baseline).

    One window per iteration: one sequential panel task (``geqr2`` +
    ``larft`` class), then one full-height ``larfb`` task per trailing
    block column — the update cannot be row-chunked.
    """
    layout = BlockLayout(m, n, b)
    N = layout.N
    prev_iter_tasks: list[int] = []

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        nonlocal prev_iter_tasks
        K = window
        k0 = K * b
        bk = layout.panel_width(K)
        rows_active = m - k0
        panel_tid = tracker.add_task(
            graph,
            f"panel[{K}]",
            TaskKind.P,
            Cost(
                panel_kernel,
                m=rows_active,
                n=bk,
                flops=qr_flops(rows_active, bk),
                words=2.0 * rows_active * bk,
                library=library,
            ),
            writes=layout.active_blocks(K, K),
            # Fork-join: the vendor panel barriers on the previous update.
            extra_deps=prev_iter_tasks if fork_join else (),
            priority=task_priority("P", K, lookahead=lookahead, n_cols=N),
            iteration=K,
        )
        prev_iter_tasks = [panel_tid]
        for J in range(K + 1, N):
            j0, j1 = layout.col_range(J)
            nc = j1 - j0
            s_tid = tracker.add_task(
                graph,
                f"S[{K}]{J}",
                TaskKind.S,
                Cost(
                    "larfb",
                    m=rows_active,
                    n=nc,
                    k=bk,
                    flops=larfb_flops(rows_active, nc, bk),
                    words=2.0 * rows_active * nc + rows_active * bk,
                    library=library,
                ),
                reads=[(i, K) for i in range(K, layout.M)],
                writes=layout.active_blocks(K, J),
                priority=task_priority("S", K, J, lookahead=lookahead, n_cols=N),
                iteration=K,
            )
            prev_iter_tasks.append(s_tid)

    return GraphProgram(
        f"geqrf{m}x{n}b{b}", layout.n_panels, emit, lookahead=lookahead
    )


def build_geqrf_graph(
    m: int,
    n: int,
    b: int = 64,
    library: str = "mkl",
    lookahead: int = 0,
    panel_kernel: str = "geqrf_panel",
    fork_join: bool = True,
) -> TaskGraph:
    """Eagerly materialized :func:`geqrf_program` (historical interface)."""
    return geqrf_program(
        m,
        n,
        b,
        library=library,
        lookahead=lookahead,
        panel_kernel=panel_kernel,
        fork_join=fork_join,
    ).materialize()
