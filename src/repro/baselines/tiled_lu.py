"""PLASMA-style tiled LU with incremental pivoting.

The "tiled algorithms" baseline of the paper (Buttari et al. [5],
PLASMA ``dgetrf``): the matrix is cut into ``nb x nb`` tiles and the
factorization proceeds per tile column with four kernels —

* ``getrf_tile`` — LU with partial pivoting *inside* the diagonal tile;
* ``gessm``      — apply its pivots + ``L`` to a tile on the right;
* ``tstrf``      — LU of the updated ``U_kk`` stacked on a tile below,
  pivoting only across that tile pair (incremental pivoting);
* ``ssssm``      — replay a ``tstrf`` elimination on a tile pair to
  the right.

This removes the panel from the critical path (the paper's
"removing the panel factorization from the critical path" reference)
at the price of weaker pivoting: the growth factor grows with the
number of tiles, which the stability benchmark contrasts with CALU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.analysis.flops import lu_flops, ssssm_flops, trsm_left_flops, tstrf_flops
from repro.core.layout import BlockLayout
from repro.core.priorities import task_priority
from repro.kernels.blas import gemm, laswp, trsm_llnu
from repro.kernels.lu import getf2
from repro.kernels.structured import TstrfOps, ssssm_apply, tstrf
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram
from repro.runtime.task import Cost, TaskKind

__all__ = ["TiledLU", "tiled_lu", "build_tiled_lu_graph", "tiled_lu_program"]


@dataclass
class TiledLU:
    """Factorization state of :func:`tiled_lu`.

    ``packed`` holds the tiles in place (``U`` in the global upper
    triangle, tile-local multipliers elsewhere); solving replays the
    recorded per-tile eliminations — incremental pivoting has no single
    global row permutation.
    """

    packed: np.ndarray
    nb: int
    piv: dict[int, np.ndarray] = field(default_factory=dict)
    ops: dict[tuple[int, int], TstrfOps] = field(default_factory=dict)
    # L_kk captured right after the diagonal-tile LU: the later tstrf
    # chain swaps full tile rows and overwrites the multipliers stored
    # below the diagonal of the tile.
    lkk: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def layout(self) -> BlockLayout:
        m, n = self.packed.shape
        return BlockLayout(m, n, self.nb)

    @property
    def U(self) -> np.ndarray:
        """The final upper-triangular factor."""
        r = min(self.packed.shape)
        return np.triu(self.packed[:r, :])

    def forward_apply(self, rhs: np.ndarray) -> np.ndarray:
        """Replay the elimination on *rhs*: returns ``y`` with ``U x = y``."""
        lay = self.layout
        m = lay.m
        rhs = np.asarray(rhs, dtype=float)
        y = rhs.reshape(m, -1).copy()
        for k in range(lay.n_panels):
            r0, r1 = lay.row_range(k)
            ck = lay.col_range(k)[1] - lay.col_range(k)[0]
            yk = y[r0:r1]
            laswp(yk, self.piv[k])
            trsm_llnu(self.lkk[k][:ck], yk[:ck])
            if r1 - r0 > ck:
                # Tall diagonal row tile (m > n tail): the rows below the
                # square part were eliminated by the tile LU itself.
                gemm(yk[ck:], self.lkk[k][ck:], yk[:ck])
            for i in range(k + 1, lay.M):
                s0, s1 = lay.row_range(i)
                ssssm_apply(self.ops[(i, k)], yk[:ck], y[s0:s1])
        return y

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a square factorization."""
        m, n = self.packed.shape
        if m != n:
            raise ValueError(f"solve requires a square factorization, got {self.packed.shape}")
        rhs = np.asarray(rhs, dtype=float)
        squeeze = rhs.ndim == 1
        y = self.forward_apply(rhs)
        x = scipy.linalg.solve_triangular(self.packed, y, lower=False)
        return x[:, 0] if squeeze else x


def _unit_lower(B: np.ndarray) -> np.ndarray:
    r = min(B.shape)
    L = np.tril(B[:, :r], -1)
    np.fill_diagonal(L, 1.0)
    return L


def tiled_lu(A: np.ndarray, nb: int = 64, overwrite: bool = False) -> TiledLU:
    """Factor ``A`` (``m >= n``) with PLASMA-style incremental pivoting."""
    A = np.array(A, dtype=float, order="C", copy=not overwrite, subok=False)
    m, n = A.shape
    if m < n:
        raise ValueError(f"tiled_lu requires m >= n, got {A.shape}")
    lay = BlockLayout(m, n, nb)
    out = TiledLU(packed=A, nb=nb)
    for k in range(lay.n_panels):
        r0, r1 = lay.row_range(k)
        c0, c1 = lay.col_range(k)
        ck = c1 - c0
        akk = A[r0:r1, c0:c1]
        out.piv[k] = getf2(akk)
        out.lkk[k] = _unit_lower(akk)
        for j in range(k + 1, lay.N):
            j0, j1 = lay.col_range(j)
            tile = A[r0:r1, j0:j1]
            laswp(tile, out.piv[k])
            trsm_llnu(out.lkk[k][:ck], tile[:ck])
            if r1 - r0 > ck:
                gemm(tile[ck:], out.lkk[k][ck:], tile[:ck])
        for i in range(k + 1, lay.M):
            s0, s1 = lay.row_range(i)
            ops = tstrf(akk[:ck], A[s0:s1, c0:c1])
            out.ops[(i, k)] = ops
            for j in range(k + 1, lay.N):
                j0, j1 = lay.col_range(j)
                ssssm_apply(ops, A[r0 : r0 + ck, j0:j1], A[s0:s1, j0:j1])
    return out


def tiled_lu_program(
    m: int,
    n: int,
    nb: int = 200,
    library: str = "plasma",
    lookahead: int = 1,
) -> GraphProgram:
    """Symbolic PLASMA tiled LU as a streaming program (one window per
    tile column) for the simulator."""
    lay = BlockLayout(m, n, nb)
    N = lay.N

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        k = window
        rk = lay.row_range(k)[1] - lay.row_range(k)[0]
        ck = lay.col_range(k)[1] - lay.col_range(k)[0]
        tracker.add_task(
            graph,
            f"getrf[{k}]",
            TaskKind.P,
            Cost(
                "getrf_tile",
                m=rk,
                n=ck,
                flops=lu_flops(rk, ck),
                words=2.0 * rk * ck,
                library=library,
            ),
            writes=[(k, k)],
            priority=task_priority("P", k, lookahead=lookahead, n_cols=N),
            iteration=k,
        )
        for j in range(k + 1, N):
            cj = lay.col_range(j)[1] - lay.col_range(j)[0]
            tracker.add_task(
                graph,
                f"gessm[{k},{j}]",
                TaskKind.U,
                Cost(
                    "gessm",
                    m=rk,
                    n=cj,
                    k=ck,
                    flops=trsm_left_flops(ck, cj),
                    words=2.0 * rk * cj + rk * ck,
                    library=library,
                ),
                reads=[(k, k), (k, j)],
                writes=[(k, j)],
                priority=task_priority("U", k, j, lookahead=lookahead, n_cols=N),
                iteration=k,
                col=j,
            )
        for i in range(k + 1, lay.M):
            ri = lay.row_range(i)[1] - lay.row_range(i)[0]
            tracker.add_task(
                graph,
                f"tstrf[{i},{k}]",
                TaskKind.P,
                Cost(
                    "tstrf",
                    m=ri,
                    n=ck,
                    k=ck,
                    flops=tstrf_flops(ri, ck),
                    words=2.0 * ri * ck + ck * ck,
                    library=library,
                ),
                # Reads and updates the running U_kk: serial chain down column k.
                reads=[(k, k), (i, k)],
                writes=[(k, k), (i, k)],
                priority=task_priority("P", k, lookahead=lookahead, n_cols=N),
                iteration=k,
            )
            for j in range(k + 1, N):
                cj = lay.col_range(j)[1] - lay.col_range(j)[0]
                tracker.add_task(
                    graph,
                    f"ssssm[{i},{k},{j}]",
                    TaskKind.S,
                    Cost(
                        "ssssm",
                        m=ri,
                        n=cj,
                        k=ck,
                        flops=ssssm_flops(ri, cj, ck),
                        words=2.0 * ri * cj + ri * ck + ck * cj,
                        library=library,
                    ),
                    reads=[(i, k), (k, j), (i, j)],
                    writes=[(k, j), (i, j)],
                    priority=task_priority("S", k, j, lookahead=lookahead, n_cols=N),
                    iteration=k,
                    col=j,
                )

    return GraphProgram(
        f"tiled_lu{m}x{n}nb{nb}", lay.n_panels, emit, lookahead=lookahead
    )


def build_tiled_lu_graph(
    m: int,
    n: int,
    nb: int = 200,
    library: str = "plasma",
    lookahead: int = 1,
) -> TaskGraph:
    """Eagerly materialized :func:`tiled_lu_program` (historical interface)."""
    return tiled_lu_program(m, n, nb, library=library, lookahead=lookahead).materialize()
