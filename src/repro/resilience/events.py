"""Structured resilience events.

Every resilience mechanism — fault injection, task retry, watchdog
timeouts, numerical health guards, graceful degradation, message
retransmission — reports what it did as a :class:`ResilienceEvent`.
Executors collect the events alongside the schedule records, so a
:class:`~repro.runtime.trace.Trace` (or a raised
:class:`~repro.resilience.recovery.RuntimeFailure`) carries a complete,
machine-readable account of everything that went wrong and every
recovery action taken.  Benchmarks chart the counts; tests assert on
them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResilienceEvent", "EVENT_KINDS"]

#: Canonical event kinds, in roughly increasing severity:
#:
#: ``fault_stall`` / ``fault_raise`` / ``fault_corrupt``
#:     A fault the :class:`~repro.resilience.faults.FaultPlan` injected.
#: ``retry``
#:     A failed task attempt that the retry policy re-ran.
#: ``degraded``
#:     A graceful-degradation decision (e.g. a CALU panel falling back
#:     from tournament to partial pivoting).
#: ``refine``
#:     A solver escalated to (additional) iterative refinement.
#: ``comm_drop`` / ``comm_corrupt``
#:     A message fault detected and repaired by retransmission.
#: ``abft_correct``
#:     An ABFT checksum repaired a corrupted element in place.
#: ``recompute``
#:     A corrupted reduction subtree was recomputed from clean data
#:     (e.g. a TSLU tournament replayed from the untouched panel).
#: ``checkpoint`` / ``resume``
#:     A panel snapshot was written / a run restarted from one,
#:     skipping journaled tasks.
#: ``rank_loss``
#:     A distributed participant died; survivors recomputed its share.
#: ``health``
#:     A numerical health guard fired (NaN/Inf block, pivot growth).
#: ``timeout`` / ``stall`` / ``deadlock`` / ``worker_death``
#:     Watchdog findings; always fatal.
#: ``autotune``
#:     The dispatch autotuner recorded its backend/fusion decision
#:     (informational; see :mod:`repro.machine.autotune`).
EVENT_KINDS = (
    "fault_stall",
    "fault_raise",
    "fault_corrupt",
    "retry",
    "degraded",
    "refine",
    "comm_drop",
    "comm_corrupt",
    "abft_correct",
    "recompute",
    "checkpoint",
    "resume",
    "rank_loss",
    "health",
    "timeout",
    "stall",
    "deadlock",
    "worker_death",
    "autotune",
)


@dataclass(frozen=True)
class ResilienceEvent:
    """One resilience occurrence: what happened, to which task, how bad.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    task:
        Name of the task involved (``""`` for runtime-level events).
    tid:
        Task id (``-1`` when not tied to a single task).
    detail:
        Human-readable description.
    value:
        Optional numeric payload (growth factor, residual, seconds).
    fatal:
        True when the event aborts the run (the executor raises a
        :class:`~repro.resilience.recovery.RuntimeFailure`).
    """

    kind: str
    task: str = ""
    tid: int = -1
    detail: str = ""
    value: float | None = None
    fatal: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "task": self.task,
            "tid": self.tid,
            "detail": self.detail,
            "value": self.value,
            "fatal": self.fatal,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ResilienceEvent":
        """Inverse of :meth:`to_dict` (trace JSON round-trips)."""
        return cls(
            kind=d["kind"],
            task=d.get("task", ""),
            tid=int(d.get("tid", -1)),
            detail=d.get("detail", ""),
            value=d.get("value"),
            fatal=bool(d.get("fatal", False)),
        )
