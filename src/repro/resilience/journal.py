"""Write-ahead task journal for the executors.

A :class:`TaskJournal` records every completed task (name + id) as one
JSON line in a :class:`~repro.resilience.checkpoint.CheckpointStore`.
On a restarted run, ``executor.run(graph, journal=journal)`` skips the
journaled tasks — their effects are already present (recomputed into
the matrix by the checkpoint restore, or still live in process memory)
— and resumes scheduling from the surviving frontier.

The journal is deliberately forgiving on load: a truncated or corrupt
tail (the writer was killed mid-append) silently ends the log at the
last intact line, and a header that does not match the graph being run
resets the journal — both cases degrade to "start fresh", never to a
crash or to skipping work that was not actually done.
"""

from __future__ import annotations

import json

from repro.resilience.checkpoint import CheckpointStore, MemoryStore
from repro.runtime.sync import make_lock

__all__ = ["TaskJournal"]


class TaskJournal:
    """Completed-task log over a pluggable checkpoint store.

    Parameters
    ----------
    store:
        Persistence backend (default: in-memory).
    key:
        The store key of the journal's line log.
    """

    def __init__(self, store: CheckpointStore | None = None, key: str = "journal") -> None:
        self.store = store if store is not None else MemoryStore()
        self.key = key
        self._lock = make_lock("resilience.journal")
        self._header: dict | None = None
        self._completed: set[str] = set()
        self._load()

    # ------------------------------------------------------------------
    # Loading and graph binding
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            lines = self.store.read_lines(self.key)
        except Exception:
            lines = []
        header: dict | None = None
        completed: set[str] = set()
        for line in lines:
            try:
                obj = json.loads(line)
            except ValueError:
                break  # torn tail from a killed writer: stop here
            if not isinstance(obj, dict):
                break
            if "header" in obj:
                header = obj["header"]
            elif "task" in obj:
                completed.add(obj["task"])
            else:
                break
        self._header = header
        self._completed = completed

    @staticmethod
    def _signature(source) -> dict:
        # Eager graphs carry a task count; streaming GraphPrograms only
        # know their name up front (the task list grows window by
        # window), so their signature is name-only.
        sig = {"graph": source.name}
        tasks = getattr(source, "tasks", None)
        if tasks is not None:
            sig["n_tasks"] = len(tasks)
        return sig

    @staticmethod
    def _compatible(header: dict, sig: dict) -> bool:
        if header.get("graph") != sig.get("graph"):
            return False
        if "n_tasks" in header and "n_tasks" in sig and header["n_tasks"] != sig["n_tasks"]:
            return False
        return True

    def bind(self, source) -> set[str]:
        """Attach the journal to a graph or program; returns the
        completed names.

        A journal written for a different graph (mismatched header) is
        reset — its entries describe other tasks and must not cause
        skips.  Entries naming tasks an eager graph does not contain
        are ignored for the same reason; for a streaming
        :class:`~repro.runtime.program.GraphProgram` the full set is
        returned (the executor matches names at window registration,
        so foreign entries are simply never hit).
        """
        sig = self._signature(source)
        with self._lock:
            if self._header is not None and not self._compatible(self._header, sig):
                self._reset_locked()
            if self._header is None:
                self.store.append_line(self.key, json.dumps({"header": sig}, sort_keys=True))
                self._header = sig
            tasks = getattr(source, "tasks", None)
            if tasks is None:
                return set(self._completed)
            names = {t.name for t in tasks}
            return self._completed & names

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def completed(self) -> frozenset:
        with self._lock:
            return frozenset(self._completed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._completed)

    def record(self, task) -> None:
        """Journal one completed task (called by executors post-guards)."""
        self.record_name(task.name, getattr(task, "tid", -1))

    def record_name(self, name: str, tid: int = -1) -> None:
        with self._lock:
            if name in self._completed:
                return
            self.store.append_line(self.key, json.dumps({"task": name, "tid": tid}))
            self._completed.add(name)

    def mark_completed(self, names) -> None:
        """Bulk-journal *names* (checkpoint restore seeds the skip set)."""
        for name in names:
            self.record_name(name)

    def _reset_locked(self) -> None:
        self.store.delete(self.key)
        self._header = None
        self._completed = set()

    def reset(self) -> None:
        """Discard all entries (and the header)."""
        with self._lock:
            self._reset_locked()
