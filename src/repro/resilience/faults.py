"""Deterministic fault injection for executors and the comm layer.

A :class:`FaultPlan` is a seeded schedule of failures: per-task-kind
probabilities of raised exceptions, NaN/Inf output corruption and
artificial stalls, plus drop/corrupt probabilities for the distributed
``CommLog``.  Decisions are pure functions of ``(seed, task id,
attempt)`` — never of thread timing — so a faulty run is exactly
reproducible on both the threaded and the simulated executor, and a
*transient* plan is guaranteed to clear on retry.

The plan is pluggable:

* ``ThreadedExecutor(fault_plan=...)`` / ``SimulatedExecutor(...)``
  consult it before (stall, raise) and after (corrupt) every task;
* ``CommLog(fault_plan=...)`` consults it per message and models a
  reliable transport over the lossy channel: dropped or corrupted
  messages are detected (ack/checksum) and retransmitted, with the
  extra traffic counted.

Corruption targets the task's declared ``meta["corrupt"]`` hook when
present (the TSLU builders attach hooks that poison the tournament's
candidate buffers), else a NaN is poked into the registered ``target``
array at a seeded location.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.resilience.events import ResilienceEvent
from repro.runtime.sync import make_lock

__all__ = ["FaultPlan", "InjectedFault", "Rates"]

#: A fault probability: one float for every task kind, or a mapping
#: from task-kind letter (``"P"``, ``"L"``, ``"U"``, ``"S"``, ``"X"``,
#: with ``"*"`` as default) to a probability.
Rates = "float | Mapping[str, float]"

# Channel tags decorrelate the per-purpose random draws.
_CH_RAISE, _CH_CORRUPT, _CH_STALL, _CH_MSG_DROP, _CH_MSG_CORRUPT, _CH_TARGET = range(6)


class InjectedFault(RuntimeError):
    """An exception raised by the fault-injection harness.

    ``pre_execution`` is True when the fault fired *before* the task's
    closure ran — the task performed no work, so a retry is always safe
    regardless of the task's idempotence.
    """

    def __init__(self, message: str, task: str = "", tid: int = -1, pre_execution: bool = True):
        super().__init__(message)
        self.task = task
        self.tid = tid
        self.pre_execution = pre_execution

    def __reduce__(self):
        # Default exception pickling replays ``cls(*self.args)`` with
        # only the message, losing task/tid/pre_execution; restore them
        # as state.
        message = self.args[0] if self.args else ""
        return (self.__class__, (message,), self.__dict__.copy())

    def __setstate__(self, state):
        self.__dict__.update(state)


class FaultPlan:
    """Seeded per-task-kind fault schedule.

    Parameters
    ----------
    seed:
        Root seed; all decisions derive deterministically from it.
    raise_rate, corrupt_rate, stall_rate:
        Probability (per task attempt) of raising an
        :class:`InjectedFault`, corrupting the task's output with
        NaN, or stalling for ``stall_s`` seconds.  Each accepts a
        float (all kinds) or a ``{"P": 0.5, "*": 0.0}`` mapping.
    stall_s:
        Length of an injected stall (wall seconds on the threaded
        executor, virtual seconds on the simulated one).
    transient:
        When True (default) faults only fire on a task's first attempt,
        so a retry policy can always recover.  When False every attempt
        re-draws, modelling a persistent failure.
    max_faults:
        Optional cap on the total number of injected faults.
    msg_drop_rate, msg_corrupt_rate:
        Per-message probabilities for :class:`~repro.distmem.comm.CommLog`.
    target:
        Optional array to poison on ``corrupt`` faults when the task
        has no ``meta["corrupt"]`` hook.  ``calu``/``caqr`` register
        their working matrix here automatically when run with a
        fault-planning executor.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        raise_rate: "float | Mapping[str, float]" = 0.0,
        corrupt_rate: "float | Mapping[str, float]" = 0.0,
        stall_rate: "float | Mapping[str, float]" = 0.0,
        stall_s: float = 0.02,
        transient: bool = True,
        max_faults: int | None = None,
        msg_drop_rate: float = 0.0,
        msg_corrupt_rate: float = 0.0,
        target: np.ndarray | None = None,
    ) -> None:
        self.seed = int(seed)
        self.raise_rate = raise_rate
        self.corrupt_rate = corrupt_rate
        self.stall_rate = stall_rate
        self.stall_s = float(stall_s)
        self.transient = bool(transient)
        self.msg_drop_rate = float(msg_drop_rate)
        self.msg_corrupt_rate = float(msg_corrupt_rate)
        self.target = target
        self._budget = None if max_faults is None else int(max_faults)
        self._lock = make_lock("resilience.faults")
        self.injected: list[ResilienceEvent] = []

    # ------------------------------------------------------------------
    # Deterministic draws
    # ------------------------------------------------------------------
    @staticmethod
    def _rate(table, kind: str) -> float:
        if isinstance(table, Mapping):
            return float(table.get(kind, table.get("*", 0.0)))
        return float(table)

    def _draw(self, channel: int, a: int, b: int) -> float:
        rng = np.random.default_rng([self.seed, channel, int(a) & 0x7FFFFFFF, int(b) & 0x7FFFFFFF])
        return float(rng.random())

    def _take_budget(self) -> bool:
        with self._lock:
            if self._budget is None:
                return True
            if self._budget <= 0:
                return False
            self._budget -= 1
            return True

    def _note(self, ev: ResilienceEvent, record: Callable[[ResilienceEvent], None] | None) -> None:
        with self._lock:
            self.injected.append(ev)
        if record is not None:
            record(ev)

    @property
    def n_injected(self) -> int:
        with self._lock:
            return len(self.injected)

    # ------------------------------------------------------------------
    # Task faults
    # ------------------------------------------------------------------
    def decide(self, task, attempt: int = 0) -> dict:
        """Side-effect-free decisions for one task attempt.

        Returns a dict with any of ``{"stall": seconds, "raise": True,
        "corrupt": True}``; empty when no fault fires.  Does not consume
        the fault budget — application does.
        """
        if self.transient and attempt > 0:
            return {}
        kind = task.kind.value
        out: dict = {}
        if self._draw(_CH_STALL, task.tid, attempt) < self._rate(self.stall_rate, kind):
            out["stall"] = self.stall_s
        if self._draw(_CH_RAISE, task.tid, attempt) < self._rate(self.raise_rate, kind):
            out["raise"] = True
        if self._draw(_CH_CORRUPT, task.tid, attempt) < self._rate(self.corrupt_rate, kind):
            out["corrupt"] = True
        return out

    def pre_task(self, task, attempt: int = 0, record=None) -> None:
        """Apply pre-execution faults: stall, then raise.

        Called by executors with no locks held.  May sleep; may raise
        :class:`InjectedFault`.
        """
        d = self.decide(task, attempt)
        if "stall" in d and self._take_budget():
            self._note(
                ResilienceEvent(
                    "fault_stall",
                    task.name,
                    task.tid,
                    detail=f"injected {d['stall'] * 1e3:.0f} ms stall",
                    value=d["stall"],
                ),
                record,
            )
            import time

            time.sleep(d["stall"])
        if d.get("raise") and self._take_budget():
            self._note(
                ResilienceEvent(
                    "fault_raise",
                    task.name,
                    task.tid,
                    detail=f"injected exception (attempt {attempt})",
                ),
                record,
            )
            raise InjectedFault(
                f"injected fault in task {task.name!r} (attempt {attempt})",
                task=task.name,
                tid=task.tid,
                pre_execution=True,
            )

    def post_task(self, task, attempt: int = 0, record=None) -> bool:
        """Apply post-execution corruption; returns True if applied."""
        d = self.decide(task, attempt)
        if not d.get("corrupt") or not self._take_budget():
            return False
        return self.apply_corruption(task, record)

    def apply_corruption(self, task, record=None) -> bool:
        """Poison *task*'s output: its ``meta["corrupt"]`` hook, else
        a NaN poked into the registered ``target`` array."""
        hook = task.meta.get("corrupt") if task.meta else None
        where = ""
        if hook is not None:
            hook()
            where = "corrupt hook"
        elif self.target is not None and self.target.size:
            idx = int(self._draw(_CH_TARGET, task.tid, 0) * self.target.size) % self.target.size
            self.target.flat[idx] = np.nan
            where = f"target[{idx}]"
        else:
            return False
        self._note(
            ResilienceEvent(
                "fault_corrupt",
                task.name,
                task.tid,
                detail=f"NaN corruption via {where}",
            ),
            record,
        )
        return True

    def virtual_faults(self, task, retry=None, record=None) -> tuple[float, BaseException | None, bool]:
        """Fault decisions for a virtual-time (simulated) executor.

        Replays the attempt sequence the threaded executor would see:
        consumes budget, records events, and returns
        ``(extra_delay_seconds, failure_or_None, corrupt)`` where the
        delay accounts for injected stalls and retry backoff.
        """
        delay = 0.0
        failure: BaseException | None = None
        d0 = self.decide(task, 0)
        if "stall" in d0 and self._take_budget():
            delay += d0["stall"]
            self._note(
                ResilienceEvent(
                    "fault_stall",
                    task.name,
                    task.tid,
                    detail=f"injected {d0['stall'] * 1e3:.0f} ms stall",
                    value=d0["stall"],
                ),
                record,
            )
        attempt = 0
        while True:
            d = self.decide(task, attempt)
            if not d.get("raise") or not self._take_budget():
                break
            exc = InjectedFault(
                f"injected fault in task {task.name!r} (attempt {attempt})",
                task=task.name,
                tid=task.tid,
                pre_execution=True,
            )
            self._note(
                ResilienceEvent(
                    "fault_raise",
                    task.name,
                    task.tid,
                    detail=f"injected exception (attempt {attempt})",
                ),
                record,
            )
            if retry is not None and retry.should_retry(task, exc, attempt):
                delay += retry.delay(attempt, task.tid)
                self._note(
                    ResilienceEvent(
                        "retry",
                        task.name,
                        task.tid,
                        detail=f"attempt {attempt + 1} after InjectedFault",
                    ),
                    record,
                )
                attempt += 1
                continue
            failure = exc
            break
        corrupt = bool(d0.get("corrupt")) and failure is None and self._take_budget()
        return delay, failure, corrupt

    # ------------------------------------------------------------------
    # Message faults (CommLog)
    # ------------------------------------------------------------------
    def on_message(self, src: int, dst: int, words: int, seq: int) -> str | None:
        """Fault verdict for one message: ``"drop"``, ``"corrupt"`` or None."""
        pair = (int(src) * 1009 + int(dst)) & 0x7FFFFFFF
        if self.msg_drop_rate > 0.0 and self._draw(_CH_MSG_DROP, pair, seq) < self.msg_drop_rate:
            if self._take_budget():
                return "drop"
        if (
            self.msg_corrupt_rate > 0.0
            and self._draw(_CH_MSG_CORRUPT, pair, seq) < self.msg_corrupt_rate
        ):
            if self._take_budget():
                return "corrupt"
        return None
