"""Panel-granularity checkpointing for CALU/CAQR.

A long factorization that dies past panel 40 of 64 should not restart
from scratch.  The block algorithms have a natural recovery unit — the
panel iteration boundary — and at each boundary the matrix state
decomposes into pieces that are *final* (the factored panel columns,
the ``U`` block rows) plus one piece that is still live (the trailing
matrix).  A :class:`Checkpoint` therefore persists, per boundary ``K``:

* ``cols`` — the panel columns factored since the previous snapshot
  (full height; final until the terminal left-swap task, which always
  re-runs on resume);
* ``urows`` — the corresponding ``U`` block rows right of the panel
  (final once iteration ``K`` completes);
* ``trailing`` — the live trailing matrix ``A[k1:, c1:]``, stored
  *latest-only* (plus one predecessor for the recovery ladder) with a
  CRC32 digest so torn writes are detected;
* caller-supplied extras (pivot sequences, implicit-Q factors).

Snapshots chain backwards via a ``prev`` pointer, so restoring composes
all surviving ``cols``/``urows`` deltas with the newest verified
trailing snapshot — reproducing the exact bytes the matrix held at the
boundary.  Every remaining kernel is deterministic on those bytes, so a
resumed run yields **bitwise-identical** factors to an uninterrupted
one.

Stores are pluggable: :class:`MemoryStore` for tests and overhead-free
in-process restarts, :class:`FileStore` (atomic-rename writes,
digest-verified payloads) for real runs that must survive ``kill -9``.
"""

from __future__ import annotations

import io
import json
import os
import struct
import tempfile
import threading
import zlib

import numpy as np

from repro.runtime.sync import make_condition, make_lock

__all__ = [
    "CheckpointStore",
    "MemoryStore",
    "FileStore",
    "Checkpoint",
    "pack_arrays",
    "unpack_arrays",
    "restore_matrix",
]

_MAGIC = b"RPCK1\n"


def pack_arrays(arrays: dict) -> bytes:
    """Serialize named arrays to a self-verifying payload (CRC32-framed npz)."""
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    payload = buf.getvalue()
    return _MAGIC + struct.pack("<I", zlib.crc32(payload)) + payload


def unpack_arrays(data: bytes) -> dict | None:
    """Inverse of :func:`pack_arrays`; None on any corruption (bad magic,
    failed CRC, truncation) — callers treat that as "snapshot absent"."""
    head = len(_MAGIC) + 4
    if len(data) < head or not data.startswith(_MAGIC):
        return None
    (crc,) = struct.unpack("<I", data[len(_MAGIC) : head])
    payload = data[head:]
    if zlib.crc32(payload) != crc:
        return None
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as z:
            return {k: z[k] for k in z.files}
    except Exception:
        return None


class CheckpointStore:
    """Interface for checkpoint persistence.

    Two kinds of data: *array payloads* (snapshots) keyed by
    hierarchical string keys, and *append-only line logs* (the task
    journal).  Implementations must make :meth:`save_arrays` atomic —
    a reader never sees a half-written payload — and must tolerate a
    process dying between any two calls.
    """

    def save_arrays(self, key: str, arrays: dict) -> None:
        raise NotImplementedError

    def load_arrays(self, key: str) -> dict | None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def append_line(self, key: str, line: str) -> None:
        raise NotImplementedError

    def read_lines(self, key: str) -> list[str]:
        raise NotImplementedError

    def clear(self, prefix: str = "") -> None:
        """Delete every key (array and line) starting with *prefix*."""
        for k in list(self.keys()):
            if k.startswith(prefix):
                self.delete(k)


class MemoryStore(CheckpointStore):
    """In-process store: array payloads are held as plain copies.

    The default for tests and for guarding against in-process failures
    (a ``RuntimeFailure`` mid-run) where serialization cost would only
    distort the <5% overhead budget.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, dict] = {}
        self._lines: dict[str, list[str]] = {}
        self._lock = make_lock("checkpoint.memory")

    def save_arrays(self, key: str, arrays: dict) -> None:
        copied = {k: np.array(v, copy=True) for k, v in arrays.items()}
        with self._lock:
            self._arrays[key] = copied

    def load_arrays(self, key: str) -> dict | None:
        with self._lock:
            stored = self._arrays.get(key)
            if stored is None:
                return None
            return {k: v.copy() for k, v in stored.items()}

    def delete(self, key: str) -> None:
        with self._lock:
            self._arrays.pop(key, None)
            self._lines.pop(key, None)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(set(self._arrays) | set(self._lines))

    def append_line(self, key: str, line: str) -> None:
        with self._lock:
            self._lines.setdefault(key, []).append(line)

    def read_lines(self, key: str) -> list[str]:
        with self._lock:
            return list(self._lines.get(key, []))


class FileStore(CheckpointStore):
    """Directory-backed store surviving process death.

    Array payloads are written to a temp file and published with
    ``os.replace`` (atomic rename), so a snapshot either exists
    completely or not at all; the CRC32 frame additionally catches any
    torn or bit-rotted payload on read.  Line logs are appended with a
    flush per line — the page cache preserves them across a ``kill -9``
    of the writer (pass ``fsync=True`` to also survive power loss).
    """

    def __init__(self, root: str | os.PathLike, fsync: bool = False) -> None:
        self.root = os.fspath(root)
        self.fsync = fsync
        os.makedirs(self.root, exist_ok=True)
        self._lock = make_lock("checkpoint.file")

    # Keys are hierarchical ("ckpt/panel/3"); flatten to one directory.
    @staticmethod
    def _enc(key: str) -> str:
        return key.replace("/", "@")

    @staticmethod
    def _dec(name: str) -> str:
        return name.replace("@", "/")

    def _path(self, key: str, ext: str) -> str:
        return os.path.join(self.root, self._enc(key) + ext)

    def _sync_dir(self) -> None:
        """fsync the store directory itself.

        ``os.replace`` makes the *file contents* appear atomically, but
        the directory entry (the rename, or a newly created log file)
        only becomes power-loss durable once the directory inode is
        synced too — fsyncing the file alone is not enough on POSIX.
        """
        fd = os.open(self.root, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def save_arrays(self, key: str, arrays: dict) -> None:
        data = pack_arrays(arrays)
        with self._lock:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(data)
                    f.flush()
                    if self.fsync:
                        os.fsync(f.fileno())
                os.replace(tmp, self._path(key, ".npc"))
                if self.fsync:
                    self._sync_dir()
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def load_arrays(self, key: str) -> dict | None:
        try:
            with open(self._path(key, ".npc"), "rb") as f:
                data = f.read()
        except OSError:
            return None
        return unpack_arrays(data)

    def delete(self, key: str) -> None:
        for ext in (".npc", ".jsonl"):
            try:
                os.unlink(self._path(key, ext))
            except OSError:
                pass

    def keys(self) -> list[str]:
        out = set()
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            for ext in (".npc", ".jsonl"):
                if name.endswith(ext):
                    out.add(self._dec(name[: -len(ext)]))
        return sorted(out)

    def append_line(self, key: str, line: str) -> None:
        with self._lock:
            path = self._path(key, ".jsonl")
            created = not os.path.exists(path)
            with open(path, "a", encoding="utf-8") as f:
                f.write(line + "\n")
                f.flush()
                if self.fsync:
                    os.fsync(f.fileno())
            if self.fsync and created:
                # A brand-new log file's directory entry needs the same
                # directory sync the snapshot rename gets.
                self._sync_dir()

    def read_lines(self, key: str) -> list[str]:
        try:
            with open(self._path(key, ".jsonl"), "r", encoding="utf-8") as f:
                return f.read().splitlines()
        except OSError:
            return []


def _digest(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


class _SnapshotWriter:
    """Double-buffered background writer for snapshot payloads.

    Serialization + fsync of a boundary snapshot measured ~20% of total
    runtime on checkpointed runs (``BENCH_checkpoint.json``); none of it
    needs to happen on the worker that hit the boundary.  ``submit``
    copies nothing itself (the caller hands over already-copied arrays)
    and returns as soon as the job is parked in the single pending slot:
    one job may be *in flight* on the writer thread while one more waits
    *pending* — a third submission blocks, bounding memory at two
    snapshots, and a newer pending job never overtakes an older one
    (jobs drain strictly FIFO, preserving the ``prev``-pointer chain
    order on disk).

    Durability is unchanged: jobs run the same atomic-rename/fsync store
    writes, just on this thread.  A crash can only lose the *tail* of
    the chain — a resume then restores from one boundary earlier, and
    re-running the covered panels reproduces bitwise-identical factors.
    Write errors are captured and re-raised to the caller on the next
    :meth:`submit` or :meth:`flush`.
    """

    def __init__(self) -> None:
        self._lock = make_lock("checkpoint.writer")
        self._cond = make_condition("checkpoint.writer", self._lock)
        self._pending = None  # the single buffered job
        self._busy = False  # a job is executing on the writer thread
        self._error: BaseException | None = None
        self._closed = False
        self._thread: threading.Thread | None = None

    def _loop(self) -> None:
        while True:
            with self._lock:
                while self._pending is None and not self._closed:
                    self._cond.wait(0.1)
                if self._pending is None:
                    return
                job = self._pending
                self._pending = None
                self._busy = True
                self._cond.notify_all()
            try:
                job()
            except BaseException as exc:  # surfaced on next submit/flush
                with self._lock:
                    self._error = exc
            finally:
                with self._lock:
                    self._busy = False
                    self._cond.notify_all()

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            exc, self._error = self._error, None
            raise exc

    def submit(self, job) -> None:
        with self._lock:
            self._raise_pending_error()
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-ckpt-writer", daemon=True
                )
                self._thread.start()
            while self._pending is not None:  # backpressure: slot taken
                self._cond.wait(0.1)
            self._pending = job
            self._cond.notify_all()

    def flush(self) -> None:
        """Block until every submitted job has hit the store; re-raise errors."""
        if threading.current_thread() is self._thread:
            # Called from a job (e.g. the prune step listing keys):
            # FIFO draining already guarantees it sees every prior
            # write, and waiting on ourselves would deadlock.
            return
        with self._lock:
            while self._pending is not None or self._busy:
                self._cond.wait(0.1)
            self._raise_pending_error()

    def close(self) -> None:
        self.flush()
        with self._lock:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()


class Checkpoint:
    """Panel-boundary snapshot manager over a :class:`CheckpointStore`.

    Parameters
    ----------
    store:
        Persistence backend (default: a fresh :class:`MemoryStore`).
    key:
        Namespace prefix, so several factorizations can share a store.
    interval:
        Snapshot every ``interval``-th panel boundary (1 = every
        boundary).  Coarser intervals cost less but resume further back.
    keep_trailing:
        Trailing snapshots retained (newest-first); older ones are
        deleted as the factorization advances.  Keeping 2 lets the
        restore ladder fall back one boundary if the newest trailing
        payload is corrupt.
    async_writes:
        Serialize and persist snapshots on a background writer thread
        (double-buffered: one write in flight, one buffered, further
        saves block) instead of on the task that reached the boundary.
        :meth:`save_snapshot` then only pays for copying the live views
        out of the matrix; every read path (and :meth:`flush`) drains
        the writer first, so readers always observe their own writes.
        Durability is per-write unchanged; a crash can lose only the
        newest in-flight snapshot, costing a resume one extra boundary
        of recomputation — never bitwise fidelity.
    """

    def __init__(
        self,
        store: CheckpointStore | None = None,
        key: str = "ckpt",
        interval: int = 1,
        keep_trailing: int = 2,
        async_writes: bool = True,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if keep_trailing < 1:
            raise ValueError(f"keep_trailing must be >= 1, got {keep_trailing}")
        self.store = store if store is not None else MemoryStore()
        self.key = key
        self.interval = interval
        self.keep_trailing = keep_trailing
        self._writer = _SnapshotWriter() if async_writes else None

    # ------------------------------------------------------------------
    # Keys and metadata
    # ------------------------------------------------------------------
    def _k(self, *parts) -> str:
        return "/".join((self.key, *map(str, parts)))

    def journal(self):
        """The task journal living in this checkpoint's namespace."""
        from repro.resilience.journal import TaskJournal

        return TaskJournal(self.store, key=self._k("journal"))

    def flush(self) -> None:
        """Wait for in-flight snapshot writes; re-raise any write error."""
        if self._writer is not None:
            self._writer.flush()

    def clear(self) -> None:
        """Drop every snapshot and journal entry in this namespace."""
        self.flush()
        self.store.clear(self.key + "/")

    def prepare(self, signature: dict) -> bool:
        """Bind this namespace to one computation.

        *signature* identifies the factorization (algorithm, shape,
        blocking, an input digest).  A stored signature that does not
        match means the namespace holds snapshots of a *different*
        computation: everything is cleared and the run starts fresh.
        Returns True when existing snapshots remain usable.
        """
        self.flush()
        lines = self.store.read_lines(self._k("meta"))
        stored = None
        if lines:
            try:
                stored = json.loads(lines[0])
            except ValueError:
                stored = None
        if stored == signature:
            return True
        self.clear()
        self.store.append_line(self._k("meta"), json.dumps(signature, sort_keys=True))
        return False

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def should_snapshot(self, K: int) -> bool:
        return (K + 1) % self.interval == 0

    def prev_boundary(self, K: int) -> int:
        """The snapshot boundary preceding *K* (-1 when K is the first)."""
        return K - self.interval

    def save_snapshot(
        self,
        K: int,
        *,
        cols: np.ndarray,
        urows: np.ndarray,
        trailing: np.ndarray,
        extra: dict | None = None,
    ) -> None:
        """Persist the boundary-*K* snapshot (delta + latest trailing).

        With ``async_writes`` the live views handed in (``cols``,
        ``urows``, ``trailing`` alias the factorization's matrix, which
        keeps mutating past the boundary) are copied *now*, and the
        serialization + store writes happen on the background writer.
        The previous boundary's write is drained first, so reaching
        boundary ``K`` makes boundary ``K-1`` durable: a crash loses at
        most the newest snapshot, and the write of boundary ``K``
        overlaps the compute of panel ``K+1``.
        """
        arrays = {
            "cols": cols,
            "urows": urows,
            "prev": np.int64(self.prev_boundary(K)),
        }
        if extra:
            arrays.update(extra)
        if self._writer is None:
            self._persist_snapshot(K, arrays, trailing)
            return
        self._writer.flush()
        arrays = {k: np.array(v, copy=True) for k, v in arrays.items()}
        trailing = np.array(trailing, copy=True)
        self._writer.submit(lambda: self._persist_snapshot(K, arrays, trailing))

    def _persist_snapshot(self, K: int, arrays: dict, trailing: np.ndarray) -> None:
        self.store.save_arrays(self._k("panel", K), arrays)
        self.store.save_arrays(
            self._k("trailing", K),
            {"trailing": trailing, "digest": np.uint32(_digest(trailing))},
        )
        self._prune_trailing(K)

    def _trailing_ks(self) -> list[int]:
        self.flush()
        prefix = self._k("trailing") + "/"
        out = []
        for k in self.store.keys():
            if k.startswith(prefix):
                try:
                    out.append(int(k[len(prefix) :]))
                except ValueError:
                    continue
        return sorted(out)

    def _prune_trailing(self, K: int) -> None:
        ks = [k for k in self._trailing_ks() if k <= K]
        for old in ks[: -self.keep_trailing]:
            self.store.delete(self._k("trailing", old))

    def load_snapshot(self, K: int) -> dict | None:
        self.flush()
        return self.store.load_arrays(self._k("panel", K))

    def load_trailing(self, K: int) -> np.ndarray | None:
        """The boundary-*K* trailing matrix, or None if absent/corrupt."""
        self.flush()
        data = self.store.load_arrays(self._k("trailing", K))
        if data is None or "trailing" not in data or "digest" not in data:
            return None
        trailing = data["trailing"]
        if _digest(trailing) != int(data["digest"]):
            return None
        return trailing

    def snapshot_chain(self) -> list[int]:
        """Boundaries of the newest fully-restorable chain, ascending.

        Walks candidate trailing snapshots newest-first; for each,
        follows the ``prev`` pointers back to the beginning, requiring
        every delta payload (and the trailing digest) to verify.  An
        empty list means no usable checkpoint — start from scratch.
        """
        self.flush()
        for K in reversed(self._trailing_ks()):
            if self.load_trailing(K) is None:
                continue
            chain: list[int] = []
            k = K
            ok = True
            while k >= 0:
                snap = self.load_snapshot(k)
                if snap is None or "prev" not in snap:
                    ok = False
                    break
                chain.append(k)
                k = int(snap["prev"])
            if ok:
                return chain[::-1]
        return []


def restore_matrix(A: np.ndarray, layout, ckpt: Checkpoint) -> tuple[int, dict]:
    """Rebuild *A* to its newest checkpointed panel boundary, in place.

    *layout* is the factorization's block layout (``b``, ``m``, ``n``,
    ``panel_width``).  Composes the chain's ``cols``/``urows`` deltas
    and the final trailing snapshot; because every byte comes from
    snapshots taken at the boundary, the restored matrix is bitwise
    equal to the state an uninterrupted run held there.

    Returns ``(K, snapshots_by_boundary)`` — ``K`` is the restored
    boundary (-1 when nothing restorable; *A* is then untouched).
    """
    chain = ckpt.snapshot_chain()
    if not chain:
        return -1, {}
    # Load and verify everything before touching A: a payload going bad
    # between snapshot_chain() and here must not leave A half-restored.
    snaps: dict[int, dict] = {}
    for K in chain:
        snap = ckpt.load_snapshot(K)
        if snap is None:
            return -1, {}
        snaps[K] = snap
    trailing = ckpt.load_trailing(chain[-1])
    if trailing is None:
        return -1, {}
    n, m = layout.n, layout.m
    prev_c1 = 0
    for K in chain:
        snap = snaps[K]
        c1 = K * layout.b + layout.panel_width(K)
        A[:, prev_c1:c1] = snap["cols"]
        A[prev_c1:c1, c1:n] = snap["urows"]
        prev_c1 = c1
    A[prev_c1:m, prev_c1:n] = trailing
    return chain[-1], snaps
