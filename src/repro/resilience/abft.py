"""Algorithm-based fault tolerance for the trailing update.

Huang-Abraham style checksums on the blocks the CALU ``S`` tasks
update.  The Schur update ``C <- C - L U`` preserves linear checksums:

* expected row sums:    ``(C - L U) 1 = C 1 - L (U 1)``
* expected column sums: ``1^T (C - L U) = 1^T C - (1^T L) U``

Both right-hand sides are computed from the *inputs*, before the gemm
runs, at a cost of a handful of matrix-vector products — negligible
against the ``O(m n k)`` update itself.  After the update (and after
any fault-injection corruption hook has fired) the guard recomputes the
actual sums; a single inconsistent (row, column) pair localizes a
corrupted element, which is corrected *in place* from its row sum:

``C[i, j] = expected_row[i] - sum(C[i, :] except j)``

and re-verified against the column checksum.  Multi-element corruption
is not correctable this way and escalates to a fatal health verdict —
the next rung of the recovery ladder (panel-checkpoint restore) takes
over.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.events import ResilienceEvent

__all__ = ["gemm_checksums", "verify_and_correct", "gemm_abft_guard"]

#: Relative tolerance of the checksum comparison, scaled by the input
#: magnitudes and the summation length.  Loose enough that accumulated
#: roundoff never raises a false alarm; a corrupted element large
#: enough to matter numerically is far above it.
DEFAULT_RTOL = 1e-8


def gemm_checksums(C: np.ndarray, L: np.ndarray, U: np.ndarray) -> dict:
    """Expected row/column sums of ``C - L @ U``, plus the error scale.

    Called on the *pre-update* operands; the result feeds
    :func:`verify_and_correct` after the gemm ran.
    """
    ones_n = np.ones(C.shape[1])
    ones_m = np.ones(C.shape[0])
    row = C @ ones_n - L @ (U @ ones_n)
    col = ones_m @ C - (ones_m @ L) @ U
    k = L.shape[1] if L.ndim == 2 else 1
    scale = float(np.abs(C).max(initial=0.0)) + float(
        np.abs(L).max(initial=0.0) * np.abs(U).max(initial=0.0) * max(k, 1)
    )
    return {"row": row, "col": col, "scale": scale}


def verify_and_correct(
    C: np.ndarray,
    checksums: dict,
    *,
    name: str = "",
    tid: int = -1,
    rtol: float = DEFAULT_RTOL,
) -> ResilienceEvent | None:
    """Check *C* against its checksums; correct a single bad element.

    Returns None when the block verifies, an ``abft_correct`` event
    when one element was repaired (and the repair re-verifies), or a
    fatal ``health`` event when the corruption is not correctable.
    """
    row_exp, col_exp, scale = checksums["row"], checksums["col"], checksums["scale"]
    n_terms = max(C.shape[0], C.shape[1], 1)
    tol = rtol * max(1.0, scale) * np.sqrt(n_terms)
    row = C.sum(axis=1)
    col = C.sum(axis=0)
    # NaN-safe mismatch test: comparisons with NaN are False, so take
    # the complement of "close" rather than "far".
    bad_rows = np.flatnonzero(~(np.abs(row - row_exp) <= tol))
    bad_cols = np.flatnonzero(~(np.abs(col - col_exp) <= tol))
    if bad_rows.size == 0 and bad_cols.size == 0:
        return None
    if bad_rows.size == 1 and bad_cols.size == 1:
        i, j = int(bad_rows[0]), int(bad_cols[0])
        old = float(C[i, j])
        # Sum the row *around* the suspect element: subtracting C[i, j]
        # from the full row sum would poison ``rest`` with the very NaN
        # being repaired.
        rest = C[i, :j].sum() + C[i, j + 1 :].sum()
        if not np.isfinite(rest):
            return ResilienceEvent(
                "health",
                task=name,
                tid=tid,
                detail=f"ABFT: row {i} contains further non-finite values",
                fatal=True,
            )
        fixed = float(row_exp[i] - rest)
        C[i, j] = fixed
        # The repair must square with the *column* checksum too —
        # otherwise the single-element hypothesis was wrong.
        if abs(C[:, j].sum() - col_exp[j]) <= tol:
            return ResilienceEvent(
                "abft_correct",
                task=name,
                tid=tid,
                detail=(
                    f"ABFT corrected element ({i}, {j}): {old!r} -> {fixed!r} "
                    "(single-element checksum repair)"
                ),
                value=fixed,
            )
        C[i, j] = old
    return ResilienceEvent(
        "health",
        task=name,
        tid=tid,
        detail=(
            f"ABFT checksum mismatch not correctable "
            f"({bad_rows.size} rows, {bad_cols.size} cols inconsistent)"
        ),
        fatal=True,
    )


def gemm_abft_guard(A: np.ndarray, r0: int, r1: int, j0: int, j1: int, cell: list, name: str, tid: int = -1):
    """Health-guard closure verifying the block an S task updated.

    *cell* is a one-element list the task closure fills with
    :func:`gemm_checksums` output before running the gemm; the guard
    (which executors run after the fault plan's corruption step)
    verifies and, when possible, repairs the block in place.
    """

    def guard() -> ResilienceEvent | None:
        checksums = cell[0]
        if checksums is None:
            return None
        cell[0] = None
        return verify_and_correct(A[r0:r1, j0:j1], checksums, name=name, tid=tid)

    return guard
