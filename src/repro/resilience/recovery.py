"""Task-level recovery: retry policies and structured runtime failures.

The paper's runtime keeps the panel off the critical path by *always*
having work ready; this module keeps the runtime itself off the failure
path.  A :class:`RetryPolicy` re-runs failed tasks when that is safe
(idempotent tasks, or injected faults that fired before any work was
done) with exponential backoff.  When recovery is impossible the
executors raise a :class:`RuntimeFailure` — a structured exception that
names the offending task and carries the partial
:class:`~repro.runtime.trace.Trace` (with every resilience event), so a
caller can diagnose *what completed* instead of staring at a bare
kernel traceback.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.resilience.faults import InjectedFault

__all__ = ["RetryPolicy", "RuntimeFailure"]

#: Failure classes a :class:`RuntimeFailure` distinguishes.
FAILURE_KINDS = (
    "task_error",  # a task raised and retries were exhausted / not allowed
    "injected",  # an injected fault exhausted retries
    "timeout",  # watchdog: one task exceeded the per-task timeout
    "stall",  # watchdog: no progress for longer than stall_timeout
    "deadlock",  # watchdog: tasks remain but nothing is ready or running
    "worker_death",  # watchdog: a worker thread died with work in flight
    "health",  # a numerical health guard found corrupted results
    "comm",  # message-level failure (retransmission cap exceeded)
    "deadline",  # the run's absolute deadline passed before completion
    "admission",  # the service shed the request before it ran
)


class RuntimeFailure(RuntimeError):
    """A structured runtime failure.

    Attributes
    ----------
    task, tid:
        The offending task's name and id (``""`` / ``-1`` for
        runtime-level failures such as deadlocks).
    failure_kind:
        One of :data:`FAILURE_KINDS`.
    trace:
        The partial :class:`~repro.runtime.trace.Trace` of everything
        that completed before the failure, including resilience events
        (retries, injected faults, degradations).  May be None when the
        failure happened outside an executor run.
    """

    def __init__(
        self,
        message: str,
        *,
        task: str = "",
        tid: int = -1,
        failure_kind: str = "task_error",
        trace=None,
    ) -> None:
        super().__init__(message)
        self.task = task
        self.tid = tid
        self.failure_kind = failure_kind
        self.trace = trace

    def __reduce__(self):
        # The keyword-only constructor breaks the default exception
        # pickling (which replays ``cls(*self.args)`` and drops the
        # attributes); rebuild from the message and restore the rest as
        # state so the failure survives pickle/multiprocessing intact.
        message = self.args[0] if self.args else ""
        return (self.__class__, (message,), self.__dict__.copy())

    def __setstate__(self, state):
        self.__dict__.update(state)

    def summary(self) -> str:
        """One-line diagnosis including partial-progress statistics."""
        parts = [f"{self.failure_kind}: {self.args[0]}"]
        if self.task:
            parts.append(f"task={self.task!r} (tid {self.tid})")
        if self.trace is not None:
            parts.append(f"{len(self.trace.records)} tasks completed")
            counts = self.trace.resilience_summary()
            if counts:
                parts.append(", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        return "; ".join(parts)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff for recoverable tasks.

    A failed attempt is retried only when it cannot have corrupted
    shared state: the task is declared ``idempotent`` (e.g. TSLU leaf
    tasks, which read the matrix and overwrite their own candidate
    slot), or the failure is an :class:`InjectedFault` that fired
    before the closure ran.  ``retry_all=True`` lifts the safety check
    for graphs known to be side-effect free (tests, symbolic runs).

    Parameters
    ----------
    max_retries:
        Attempts allowed *after* the first (0 disables retrying).
    backoff_s, backoff_multiplier:
        Sleep ``backoff_s * multiplier**attempt`` before re-running.
    max_backoff_s:
        Optional cap on the exponential schedule; ``None`` (the
        default) leaves it unbounded, matching the historical behavior.
    jitter:
        Fraction of the (capped) backoff added as *deterministic seeded
        jitter*: the sleep becomes ``d * (1 + jitter * u)`` with
        ``u in [0, 1)`` a pure hash of ``(seed, tid, attempt)``.  Jitter
        decorrelates retry storms — many tasks (or many service
        requests) failing together re-arrive spread out instead of in
        lockstep — while staying exactly reproducible run-to-run.
    seed:
        Root seed for the jitter hash.
    retry_all:
        Retry any task regardless of idempotence.
    """

    max_retries: int = 2
    backoff_s: float = 0.002
    backoff_multiplier: float = 2.0
    max_backoff_s: float | None = None
    jitter: float = 0.0
    seed: int = 0
    retry_all: bool = False

    def delay(self, attempt: int, tid: int = 0) -> float:
        """Backoff before retry number ``attempt + 1`` of task *tid*.

        Deterministic: the same ``(seed, tid, attempt)`` always yields
        the same delay, so retried schedules replay bit-for-bit.
        """
        d = self.backoff_s * self.backoff_multiplier ** attempt
        if self.max_backoff_s is not None:
            d = min(d, self.max_backoff_s)
        if self.jitter > 0.0 and d > 0.0:
            h = zlib.crc32(struct.pack("<qqq", int(self.seed), int(tid), int(attempt)))
            d *= 1.0 + self.jitter * (h / 2**32)
        return d

    def schedule(self, tid: int = 0) -> list[float]:
        """The full delay schedule ``[delay(0), ..., delay(max_retries-1)]``."""
        return [self.delay(a, tid) for a in range(self.max_retries)]

    def should_retry(self, task, exc: BaseException, attempt: int) -> bool:
        """Whether to re-run *task* after *exc* on attempt *attempt*."""
        if attempt >= self.max_retries:
            return False
        if self.retry_all:
            return True
        if isinstance(exc, InjectedFault) and exc.pre_execution:
            return True
        return bool(getattr(task, "idempotent", False))
