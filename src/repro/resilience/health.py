"""Numerical health guards and public-entry-point validation.

Two layers of defense:

* **Entry validation** — :func:`validate_matrix` gives the public API
  (``calu``, ``caqr``, ``tslu``, ``tsqr``, ``repro.linalg``) clear
  ``ValueError``\\ s for non-2D, empty or non-finite inputs instead of
  a NumPy traceback three layers deep.

* **In-flight guards** — cheap monitors attached to tasks via
  ``meta["health"]``.  Executors run the guard after the task's
  closure; the guard returns ``None`` (healthy) or a
  :class:`~repro.resilience.events.ResilienceEvent` (recorded in the
  trace; a ``fatal`` event aborts the run as a structured
  :class:`~repro.resilience.recovery.RuntimeFailure`).  The guards are
  O(block-size) finiteness sweeps and scalar pivot-growth checks — a
  1-2% overhead next to the O(block³) kernels they watch, measured in
  ``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.events import ResilienceEvent

__all__ = [
    "NumericalHealthWarning",
    "DEFAULT_GROWTH_LIMIT",
    "validate_matrix",
    "validate_rhs",
    "finite_block_guard",
]


class NumericalHealthWarning(UserWarning):
    """A solver detected (and possibly repaired) degraded accuracy."""


#: Element-growth threshold beyond which the panel guard reports an
#: event.  GEPP growth is almost always far below this; pathological
#: (Wilkinson-type) matrices exceed it and deserve a trace entry.
DEFAULT_GROWTH_LIMIT = 1e8


def validate_matrix(
    A,
    name: str = "A",
    *,
    require_finite: bool = True,
) -> np.ndarray:
    """Validate a public-API matrix argument; returns ``np.asarray(A)``.

    Rejects non-2D inputs, empty matrices and (optionally) non-finite
    entries with a clear :class:`ValueError` naming the argument.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ValueError(
            f"{name} must be a 2-D matrix, got a {A.ndim}-D array of shape {A.shape}"
        )
    if A.size == 0:
        raise ValueError(f"{name} is empty (shape {A.shape}); nothing to factor")
    if not np.issubdtype(A.dtype, np.number):
        raise ValueError(f"{name} must be numeric, got dtype {A.dtype}")
    if np.issubdtype(A.dtype, np.complexfloating):
        raise ValueError(f"{name} must be real, got dtype {A.dtype}")
    if require_finite and not np.isfinite(A).all():
        bad = int(np.size(A) - np.count_nonzero(np.isfinite(A)))
        raise ValueError(
            f"{name} contains {bad} NaN or Inf entries "
            "(pass check_finite=False to skip this check)"
        )
    return A


def validate_rhs(rhs, n_rows: int, name: str = "rhs") -> np.ndarray:
    """Validate a right-hand side: 1-D or 2-D, matching rows, finite."""
    rhs = np.asarray(rhs)
    if rhs.ndim not in (1, 2):
        raise ValueError(f"{name} must be 1-D or 2-D, got a {rhs.ndim}-D array")
    if rhs.size == 0:
        raise ValueError(f"{name} is empty (shape {rhs.shape})")
    if rhs.shape[0] != n_rows:
        raise ValueError(
            f"{name} has {rhs.shape[0]} rows but the matrix has {n_rows}"
        )
    if not np.isfinite(rhs).all():
        raise ValueError(f"{name} contains NaN or Inf entries")
    return rhs


def finite_block_guard(A: np.ndarray, r0: int, r1: int, j0: int, j1: int, task_name: str):
    """Guard closure: fatal event if ``A[r0:r1, j0:j1]`` is non-finite.

    Attached (as ``meta["health"]``) to trailing-update (S) tasks: a
    NaN/Inf produced — or injected — by an update is caught one task
    later at the latest, so a factorization can never *return* silently
    corrupted blocks.
    """

    def check() -> ResilienceEvent | None:
        block = A[r0:r1, j0:j1]
        if np.isfinite(block).all():
            return None
        return ResilienceEvent(
            "health",
            task=task_name,
            detail=(
                f"non-finite entries in block [{r0}:{r1}, {j0}:{j1}] "
                "after trailing update"
            ),
            fatal=True,
        )

    return check
