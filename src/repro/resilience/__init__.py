"""Resilient-runtime subsystem: fault injection, recovery, health guards.

The paper's dynamic scheduler assumes every task succeeds; this
subpackage is what makes the runtime survive the cases production
hardware actually produces:

``repro.resilience.faults``
    :class:`~repro.resilience.faults.FaultPlan` — deterministic,
    seeded injection of task exceptions, NaN corruption, stalls and
    dropped/corrupted messages, pluggable into both executors and
    :class:`~repro.distmem.comm.CommLog`.

``repro.resilience.recovery``
    :class:`~repro.resilience.recovery.RetryPolicy` (bounded backoff
    retries for idempotent work) and
    :class:`~repro.resilience.recovery.RuntimeFailure` (structured
    failures carrying the partial trace).

``repro.resilience.health``
    NaN/Inf and pivot-growth guards attached to P/S tasks, plus the
    public-API input validators.

``repro.resilience.events``
    The :class:`~repro.resilience.events.ResilienceEvent` record type
    every mechanism reports through.

``repro.resilience.checkpoint`` / ``repro.resilience.journal``
    Panel-granularity checkpoint/restart: pluggable snapshot stores
    (:class:`~repro.resilience.checkpoint.MemoryStore`,
    :class:`~repro.resilience.checkpoint.FileStore`), the
    :class:`~repro.resilience.checkpoint.Checkpoint` snapshot manager
    and the write-ahead
    :class:`~repro.resilience.journal.TaskJournal` the executors
    consult to skip completed tasks on resume.

``repro.resilience.abft``
    Huang-Abraham checksums for the trailing update: single-element
    corruption is detected and repaired in place.
"""

from repro.resilience.abft import gemm_abft_guard, gemm_checksums, verify_and_correct
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointStore,
    FileStore,
    MemoryStore,
    pack_arrays,
    restore_matrix,
    unpack_arrays,
)
from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.health import (
    DEFAULT_GROWTH_LIMIT,
    NumericalHealthWarning,
    finite_block_guard,
    validate_matrix,
    validate_rhs,
)
from repro.resilience.journal import TaskJournal
from repro.resilience.recovery import RetryPolicy, RuntimeFailure

__all__ = [
    "DEFAULT_GROWTH_LIMIT",
    "Checkpoint",
    "CheckpointStore",
    "FaultPlan",
    "FileStore",
    "InjectedFault",
    "MemoryStore",
    "NumericalHealthWarning",
    "ResilienceEvent",
    "RetryPolicy",
    "RuntimeFailure",
    "TaskJournal",
    "finite_block_guard",
    "gemm_abft_guard",
    "gemm_checksums",
    "pack_arrays",
    "restore_matrix",
    "unpack_arrays",
    "validate_matrix",
    "validate_rhs",
    "verify_and_correct",
]
