"""Resilient-runtime subsystem: fault injection, recovery, health guards.

The paper's dynamic scheduler assumes every task succeeds; this
subpackage is what makes the runtime survive the cases production
hardware actually produces:

``repro.resilience.faults``
    :class:`~repro.resilience.faults.FaultPlan` — deterministic,
    seeded injection of task exceptions, NaN corruption, stalls and
    dropped/corrupted messages, pluggable into both executors and
    :class:`~repro.distmem.comm.CommLog`.

``repro.resilience.recovery``
    :class:`~repro.resilience.recovery.RetryPolicy` (bounded backoff
    retries for idempotent work) and
    :class:`~repro.resilience.recovery.RuntimeFailure` (structured
    failures carrying the partial trace).

``repro.resilience.health``
    NaN/Inf and pivot-growth guards attached to P/S tasks, plus the
    public-API input validators.

``repro.resilience.events``
    The :class:`~repro.resilience.events.ResilienceEvent` record type
    every mechanism reports through.
"""

from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.health import (
    DEFAULT_GROWTH_LIMIT,
    NumericalHealthWarning,
    finite_block_guard,
    validate_matrix,
    validate_rhs,
)
from repro.resilience.recovery import RetryPolicy, RuntimeFailure

__all__ = [
    "DEFAULT_GROWTH_LIMIT",
    "FaultPlan",
    "InjectedFault",
    "NumericalHealthWarning",
    "ResilienceEvent",
    "RetryPolicy",
    "RuntimeFailure",
    "finite_block_guard",
    "validate_matrix",
    "validate_rhs",
]
