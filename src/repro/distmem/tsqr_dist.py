"""Distributed-memory TSQR.

Each rank QR-factors its local row block, then ``R`` factors are merged
up a reduction tree with the structured ``[R; R]`` kernel; only the
``b(b+1)/2`` triangular entries travel.  With a binary tree this is the
communication-optimal parallel QR of Demmel et al. that the paper's
multicore TSQR descends from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trees import TreeKind, reduction_schedule
from repro.distmem.comm import CommLog, RowBlocks
from repro.kernels.qr import geqr2, geqr3
from repro.kernels.structured import tpqrt

__all__ = ["DistTSQR", "distributed_tsqr"]


@dataclass
class DistTSQR:
    """Result of a distributed TSQR: the final ``R`` plus the message log."""

    R: np.ndarray
    comm: CommLog
    P: int


def distributed_tsqr(
    A: np.ndarray,
    P: int = 4,
    tree: TreeKind = TreeKind.BINARY,
    leaf_kernel: str = "geqr3",
) -> DistTSQR:
    """QR of a distributed tall-skinny ``m x b`` panel; returns ``R``."""
    A = np.asarray(A, dtype=float)
    m, b = A.shape
    if m < b:
        raise ValueError(f"panel must be tall, got {A.shape}")
    dist = RowBlocks(m, P)
    log = CommLog()
    local = dist.scatter(A)
    ranks = dist.active_ranks

    # Leaves: local QR (no communication); keep the b x b R factor.
    R: dict[int, np.ndarray] = {}
    for r in ranks:
        block = local[r].copy()
        if leaf_kernel == "geqr3" and block.shape[0] >= b:
            geqr3(block)
        else:
            geqr2(block)
        rb = np.zeros((b, b))
        k = min(block.shape[0], b)
        rb[:k] = np.triu(block[:k, :])
        R[r] = rb

    # Tree merges: one round per level, triangular payloads only.
    tri_words = b * (b + 1) // 2
    for level in reduction_schedule(len(ranks), tree):
        log.new_round()
        for dst_pos, src_pos in level:
            dst = ranks[dst_pos]
            for p in src_pos:
                src = ranks[p]
                if src == dst:
                    continue
                log.send(src, dst, np.empty(tri_words))
                tpqrt(R[dst], R[src], bottom_triangular=True)
                R[src] = None  # consumed
    return DistTSQR(R=np.triu(R[ranks[0]]), comm=log, P=len(ranks))
