"""Distributed-memory TSLU and the classic panel it replaces.

Both routines factor an ``m x b`` panel distributed by block rows over
``P`` ranks, performing real arithmetic and counting every exchange:

* :func:`distributed_tslu` — tournament pivoting: local GEPP at each
  rank, candidate sets merged up a reduction tree (one message round
  per level), final pivots broadcast, rows swapped, local ``L`` solves.
* :func:`distributed_gepp_panel` — classic partial pivoting: for every
  column, a max-reduction round and a pivot-row broadcast round — the
  ``O(b log P)`` message pattern CALU eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trees import TreeKind, reduction_schedule
from repro.distmem.comm import CommLog, RowBlocks
from repro.kernels.blas import trsm_runn
from repro.kernels.lu import getf2, getf2_nopiv, perm_from_piv_rows, piv_to_perm, rgetf2
from repro.resilience.events import ResilienceEvent

__all__ = ["DistPanelLU", "distributed_tslu", "distributed_gepp_panel"]

#: Virtual rank standing in for stable storage (checkpointed block
#: replicas); a recovery fetch is counted as a message from it.
STORAGE_RANK = -1


@dataclass
class DistPanelLU:
    """Result of a distributed panel factorization.

    ``lu`` is the gathered packed factorization (``m x b``), ``piv``
    the LAPACK-style swap sequence, ``comm`` the full message log.
    ``recovered_ranks`` lists dead participants whose share of the
    tournament surviving ranks recomputed (lost-participant recovery).
    """

    lu: np.ndarray
    piv: np.ndarray
    comm: CommLog
    P: int
    recovered_ranks: tuple = ()


def _broadcast(log: CommLog, root: int, ranks: list[int], words: int) -> None:
    """Binomial-tree broadcast: ``ceil(log2 P)`` rounds, counted."""
    others = [r for r in ranks if r != root]
    have = [root]
    while others:
        log.new_round()
        senders = list(have)
        for s in senders:
            if not others:
                break
            dst = others.pop(0)
            log.send(s, dst, np.empty(words))
            have.append(dst)


def distributed_tslu(
    A: np.ndarray,
    P: int = 4,
    tree: TreeKind = TreeKind.BINARY,
    leaf_kernel: str = "rgetf2",
    comm: CommLog | None = None,
    dead_ranks: tuple = (),
) -> DistPanelLU:
    """Tournament-pivoting LU of a distributed ``m x b`` panel.

    *comm* supplies the channel — pass
    ``CommLog(fault_plan=FaultPlan(...))`` to run the tournament over a
    lossy network; the pivots are unchanged (reliable transport), only
    the counted traffic grows by the retransmissions.

    *dead_ranks* models lost participants: each dead rank's *buddy*
    (the next surviving rank, cyclically) fetches the dead rank's block
    from stable storage (counted as a message from the virtual rank
    :data:`STORAGE_RANK`), recomputes its leaf candidates, and stands
    in for it at every tree merge, broadcast and row exchange.  The
    candidate data is identical, so the pivots — and the factors — are
    exactly those of a fault-free run; only the message routing and the
    per-survivor work change.  Recoveries are logged as ``rank_loss``
    events on ``comm.events`` and reported in ``recovered_ranks``.
    """
    A = np.asarray(A, dtype=float)
    m, b = A.shape
    if m < b:
        raise ValueError(f"panel must be tall, got {A.shape}")
    dist = RowBlocks(m, P)
    log = comm if comm is not None else CommLog()
    local = dist.scatter(A)
    ranks = dist.active_ranks

    dead = tuple(sorted(set(int(r) for r in dead_ranks)))
    unknown = [r for r in dead if r not in ranks]
    if unknown:
        raise ValueError(f"dead_ranks {unknown} not among active ranks {ranks}")
    alive = [r for r in ranks if r not in dead]
    if not alive:
        raise ValueError("all ranks dead: nothing can recover the panel")

    def buddy(r: int) -> int:
        """The next surviving rank after *r*, cyclically."""
        pos = ranks.index(r)
        for off in range(1, len(ranks) + 1):
            cand = ranks[(pos + off) % len(ranks)]
            if cand in alive:
                return cand
        raise AssertionError("unreachable: alive is non-empty")

    owner = {r: (buddy(r) if r in dead else r) for r in ranks}

    # Leaves: local GEPP chooses up to b candidate rows (no
    # communication for survivors; a dead rank's buddy first fetches
    # the lost block from stable storage).
    cand_rows: dict[int, np.ndarray] = {}
    cand_gidx: dict[int, np.ndarray] = {}
    if dead:
        log.new_round()
    for r in ranks:
        block = local[r]
        if r in dead:
            log.send(STORAGE_RANK, owner[r], np.empty(block.size))
            log.events.append(
                ResilienceEvent(
                    "rank_loss",
                    task=f"rank{r}",
                    detail=(
                        f"rank {r} lost; rank {owner[r]} fetched its block "
                        f"({block.size} words) and recomputed its candidates"
                    ),
                    value=float(r),
                )
            )
        work = block.copy()
        piv = rgetf2(work) if leaf_kernel == "rgetf2" and work.shape[0] >= b else getf2(work)
        sel = piv_to_perm(piv, block.shape[0])[: min(block.shape[0], b)]
        cand_rows[r] = block[sel].copy()
        cand_gidx[r] = dist.bounds(r)[0] + sel

    # Tree reduction: one message round per level.  Slots of dead ranks
    # are serviced by their buddies — the reduction *shape* (and hence
    # the candidate merge order and the pivots) is unchanged.
    for level in reduction_schedule(len(ranks), tree):
        log.new_round()
        for dst_pos, src_pos in level:
            dst = ranks[dst_pos]
            rows = [cand_rows[dst]]
            gidx = [cand_gidx[dst]]
            for p in src_pos:
                src = ranks[p]
                if src == dst:
                    continue
                log.send(
                    owner[src], owner[dst], np.empty(cand_rows[src].size + cand_gidx[src].size)
                )
                rows.append(cand_rows[src])
                gidx.append(cand_gidx[src])
            stacked = np.vstack(rows)
            sidx = np.concatenate(gidx)
            work = stacked.copy()
            piv = getf2(work)
            sel = piv_to_perm(piv, stacked.shape[0])[: min(stacked.shape[0], b)]
            cand_rows[dst] = stacked[sel].copy()
            cand_gidx[dst] = sidx[sel]

    root = ranks[0]
    pivots = cand_gidx[root]  # global row indices, in pivot order

    # Root factors the pivot block and broadcasts U_kk + the pivot list
    # to the survivors (a dead rank's share of the panel now lives with
    # its buddy, so only survivors participate).
    Ukk_block = cand_rows[root].copy()
    getf2_nopiv(Ukk_block)
    _broadcast(log, owner[root], alive, words=b * b + len(pivots))

    # Apply the swaps on the gathered matrix; rows that cross ranks are
    # exchanged pairwise in one concurrent round.
    out = A.copy()
    piv_seq = perm_from_piv_rows(pivots, m)
    log.new_round()
    for i in range(len(piv_seq)):
        p = int(piv_seq[i])
        if p != i:
            o1, o2 = owner[dist.owner(i)], owner[dist.owner(p)]
            if o1 != o2:
                log.send(o2, o1, np.empty(b))
                log.send(o1, o2, np.empty(b))
            out[[i, p]] = out[[p, i]]

    # Top block holds the pivot rows: factor without pivoting; the rest
    # of the rows become L by local triangular solves (no communication).
    getf2_nopiv(out[:b])
    trsm_runn(out[:b], out[b:])
    return DistPanelLU(lu=out, piv=piv_seq, comm=log, P=len(ranks), recovered_ranks=dead)


def distributed_gepp_panel(A: np.ndarray, P: int = 4) -> DistPanelLU:
    """Classic partial-pivoting panel on a distributed ``m x b`` panel.

    Column by column: a binomial max-reduction to rank 0 (one round), a
    pivot-row broadcast (log-P rounds), a cross-rank swap if needed,
    then the local rank-1 updates — the per-column synchronization
    pattern whose cost motivates TSLU.
    """
    A = np.asarray(A, dtype=float)
    m, b = A.shape
    if m < b:
        raise ValueError(f"panel must be tall, got {A.shape}")
    dist = RowBlocks(m, P)
    log = CommLog()
    ranks = dist.active_ranks
    out = A.copy()
    piv = np.arange(b, dtype=np.int64)

    for j in range(b):
        # Max-reduction: each rank proposes (|value|, row); binomial tree.
        log.new_round()
        survivors = list(ranks)
        while len(survivors) > 1:
            nxt = []
            for i in range(0, len(survivors), 2):
                if i + 1 < len(survivors):
                    log.send(survivors[i + 1], survivors[i], np.empty(2))
                nxt.append(survivors[i])
            survivors = nxt
        p = j + int(np.argmax(np.abs(out[j:, j])))
        piv[j] = p
        # Pivot decision + pivot row broadcast to every rank.
        _broadcast(log, ranks[0], ranks, words=b - j + 1)
        if p != j:
            o1, o2 = dist.owner(j), dist.owner(p)
            if o1 != o2:
                log.new_round()
                log.send(o2, o1, np.empty(b))
                log.send(o1, o2, np.empty(b))
            out[[j, p]] = out[[p, j]]
        if out[j, j] != 0.0:
            out[j + 1 :, j] /= out[j, j]
            if j + 1 < b:
                out[j + 1 :, j + 1 :] -= np.outer(out[j + 1 :, j], out[j, j + 1 :])
    return DistPanelLU(lu=out, piv=piv, comm=log, P=len(ranks))
