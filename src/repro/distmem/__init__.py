"""Simulated distributed-memory substrate.

CALU and CAQR were introduced for distributed memory (the paper's
Section II); the multicore adaptation inherits their reduction trees.
This subpackage implements the *original* distributed setting as an
explicit simulation: ``P`` ranks each own a block of rows, and every
exchange goes through a counting channel, so message counts, word
volumes and alpha-beta communication times are exact — no MPI needed.

It exists to validate the communication-optimality claims end to end:

* distributed TSLU/TSQR with a binary tree needs ``ceil(log2 P)``
  message rounds per panel (optimal in parallel);
* the classic partial-pivoting panel needs one reduction round per
  *column* — ``b`` times more;
* with a flat tree the root ingests ``P - 1`` messages in one round
  (optimal in volume sequentially, latency-bound in parallel).

Numerics are identical to the shared-memory implementations — the
tournament selects the same pivot rows, TSQR computes the same ``R``.
"""

from repro.distmem.calu_dist import DistCALU, distributed_calu
from repro.distmem.comm import AlphaBeta, CommLog, RowBlocks
from repro.distmem.tslu_dist import distributed_gepp_panel, distributed_tslu
from repro.distmem.tsqr_dist import distributed_tsqr

__all__ = [
    "AlphaBeta",
    "CommLog",
    "DistCALU",
    "RowBlocks",
    "distributed_calu",
    "distributed_gepp_panel",
    "distributed_tslu",
    "distributed_tsqr",
]
