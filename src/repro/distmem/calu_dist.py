"""Distributed-memory CALU over a 1D block-row distribution.

The full factorization in the CA algorithms' original setting: ``P``
ranks own contiguous row blocks; every iteration runs the distributed
TSLU tournament (``O(log2 P)`` rounds), exchanges pivot rows, has the
pivot-block owner broadcast the ``U`` block row, and updates rank-local
trailing rows with no further communication.  Per-iteration
communication is therefore ``O(log2 P)`` message rounds — versus
``O(b log2 P)`` for a classic panel — which is the whole point.

Numerics run on a coordinator-held matrix with ownership-driven
communication tracing (documented approach; the per-rank panel
implementations in :mod:`repro.distmem.tslu_dist` move real buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trees import TreeKind, reduction_schedule
from repro.distmem.comm import CommLog, RowBlocks
from repro.kernels.blas import gemm, trsm_llnu, trsm_runn
from repro.kernels.lu import getf2, getf2_nopiv, perm_from_piv_rows, piv_to_perm, rgetf2

__all__ = ["DistCALU", "distributed_calu"]


@dataclass
class DistCALU:
    """Result of :func:`distributed_calu`.

    ``lu`` packs the factors exactly like
    :class:`~repro.core.calu.CALUFactorization.lu`; ``piv`` is the
    global swap sequence; ``comm`` the traced communication.
    """

    lu: np.ndarray
    piv: np.ndarray
    comm: CommLog
    P: int

    @property
    def perm(self) -> np.ndarray:
        return piv_to_perm(self.piv, self.lu.shape[0])


def _broadcast(log: CommLog, root: int, ranks: list[int], words: int) -> None:
    others = [r for r in ranks if r != root]
    have = [root]
    while others:
        log.new_round()
        for s in list(have):
            if not others:
                break
            dst = others.pop(0)
            log.send(s, dst, np.empty(words))
            have.append(dst)


def distributed_calu(
    A: np.ndarray,
    P: int = 4,
    b: int = 32,
    tree: TreeKind = TreeKind.BINARY,
) -> DistCALU:
    """Factor ``A`` (``m x n``) with CALU over ``P`` block-row ranks."""
    A = np.array(A, dtype=float, order="C", subok=False)
    m, n = A.shape
    dist = RowBlocks(m, P)
    log = CommLog()
    r = min(m, n)
    piv = np.arange(r, dtype=np.int64)

    for k0 in range(0, r, b):
        bk = min(b, r - k0)
        active = range(k0, m)
        # Participating ranks: owners of at least one active row.
        ranks = sorted({dist.owner(i) for i in active})

        # --- TSLU tournament over the participating ranks ---------------
        cand_rows: dict[int, np.ndarray] = {}
        cand_gidx: dict[int, np.ndarray] = {}
        for rk in ranks:
            lo, hi = dist.bounds(rk)
            lo = max(lo, k0)
            block = A[lo:hi, k0 : k0 + bk]
            work = block.copy()
            p = rgetf2(work) if work.shape[0] >= bk else getf2(work)
            sel = piv_to_perm(p, block.shape[0])[: min(block.shape[0], bk)]
            cand_rows[rk] = block[sel].copy()
            cand_gidx[rk] = lo - k0 + sel  # local to the active region
        for level in reduction_schedule(len(ranks), tree):
            log.new_round()
            for dst_pos, src_pos in level:
                dst = ranks[dst_pos]
                rows = [cand_rows[dst]]
                gidx = [cand_gidx[dst]]
                for ppos in src_pos:
                    src = ranks[ppos]
                    if src == dst:
                        continue
                    log.send(src, dst, np.empty(cand_rows[src].size + cand_gidx[src].size))
                    rows.append(cand_rows[src])
                    gidx.append(cand_gidx[src])
                stacked = np.vstack(rows)
                sidx = np.concatenate(gidx)
                work = stacked.copy()
                p = getf2(work)
                sel = piv_to_perm(p, stacked.shape[0])[: min(stacked.shape[0], bk)]
                cand_rows[dst] = stacked[sel].copy()
                cand_gidx[dst] = sidx[sel]
        root = ranks[0]
        pivots = cand_gidx[root]

        # Broadcast pivot decisions; swap full rows across ranks.
        _broadcast(log, root, ranks, words=len(pivots))
        piv_local = perm_from_piv_rows(pivots, m - k0)
        piv[k0 : k0 + bk] = piv_local[:bk] + k0
        log.new_round()
        for i in range(bk):
            p = int(piv_local[i])
            gi, gp = k0 + i, k0 + p
            if p != i:
                o1, o2 = dist.owner(gi), dist.owner(gp)
                if o1 != o2:
                    log.send(o1, o2, np.empty(n))
                    log.send(o2, o1, np.empty(n))
                A[[gi, gp]] = A[[gp, gi]]

        # Factor the pivot block (owner of the top rows) and broadcast
        # L_kk/U_kk plus the computed U block row to everyone.
        panel_top = A[k0 : k0 + bk, k0 : k0 + bk]
        getf2_nopiv(panel_top)
        if k0 + bk < n:
            trsm_llnu(panel_top, A[k0 : k0 + bk, k0 + bk :])
        top_owner = dist.owner(k0)
        _broadcast(log, top_owner, ranks, words=bk * (n - k0))

        # Local work on every rank: L blocks and trailing updates.
        if k0 + bk < m:
            trsm_runn(panel_top, A[k0 + bk :, k0 : k0 + bk])
            if k0 + bk < n:
                gemm(
                    A[k0 + bk :, k0 + bk :],
                    A[k0 + bk :, k0 : k0 + bk],
                    A[k0 : k0 + bk, k0 + bk :],
                )

    # Swaps were applied eagerly to full rows (left part included), so
    # the packing is already in LAPACK getrf form.
    return DistCALU(lu=A, piv=piv, comm=log, P=len({dist.owner(i) for i in range(m)}))
