"""Counting communication channel and row-block distribution.

The simulation is SPMD-by-coordination: the algorithm code moves NumPy
arrays between per-rank storage through :class:`CommLog`, which records
every message.  Communication *time* is evaluated afterwards under an
alpha-beta model with per-round latency: messages in the same round
(tree level) overlap, so a round costs
``alpha + beta * max_words_into_one_rank``.

Resilience: with a :class:`~repro.resilience.faults.FaultPlan` plugged
in (``CommLog(fault_plan=...)``), the channel becomes lossy — messages
are dropped or corrupted per the plan's seeded rates — and the log
models a *reliable transport* on top: a dropped message times out and
is retransmitted, a corrupted one fails its checksum and is
retransmitted, and the extra traffic is counted in the alpha-beta
time.  A message that keeps failing past ``max_retransmits`` raises a
structured :class:`~repro.resilience.recovery.RuntimeFailure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.resilience.events import ResilienceEvent

__all__ = ["AlphaBeta", "CommLog", "RowBlocks"]


@dataclass(frozen=True)
class AlphaBeta:
    """Latency-bandwidth communication model.

    ``alpha`` seconds per message round, ``beta`` seconds per word.
    """

    alpha: float = 1e-6
    beta: float = 1e-9


@dataclass
class Message:
    src: int
    dst: int
    words: int
    round_id: int


@dataclass
class CommLog:
    """Records every rank-to-rank transfer, grouped into rounds.

    A *round* is a synchronization step: the tree level in TSLU/TSQR,
    or one column's pivot reduction in the classic panel.  Messages in
    one round are assumed concurrent; receiving is serialized per rank.

    ``fault_plan`` makes the channel lossy (see the module docstring);
    ``events`` then logs one entry per drop/corruption, and
    ``n_retransmits`` counts the recovery traffic (also visible as
    extra :class:`Message` records in the same round).
    """

    messages: list[Message] = field(default_factory=list)
    _round: int = 0
    fault_plan: object | None = None
    max_retransmits: int = 5
    events: list[ResilienceEvent] = field(default_factory=list)
    n_drops: int = 0
    n_corruptions: int = 0
    n_retransmits: int = 0
    _seq: int = 0

    def new_round(self) -> int:
        self._round += 1
        return self._round

    def send(self, src: int, dst: int, payload: np.ndarray | int | float) -> None:
        """Record a transfer of *payload* from rank *src* to rank *dst*.

        With a fault plan, models the reliable transport: each
        drop/corruption verdict costs one retransmission (an extra
        message in the round) until the copy goes through cleanly.
        """
        if src == dst:
            return  # local, no communication
        words = int(np.asarray(payload).size)
        attempts = 0
        while True:
            self._seq += 1
            self.messages.append(
                Message(src=src, dst=dst, words=words, round_id=self._round)
            )
            plan = self.fault_plan
            if plan is None:
                return
            verdict = plan.on_message(src, dst, words, self._seq)
            if verdict is None:
                return
            if verdict == "drop":
                self.n_drops += 1
                detail = f"message {src}->{dst} dropped (timeout, retransmit)"
            else:
                self.n_corruptions += 1
                detail = f"message {src}->{dst} corrupted (checksum, retransmit)"
            self.events.append(
                ResilienceEvent(f"comm_{verdict}", task=f"{src}->{dst}", detail=detail)
            )
            attempts += 1
            if attempts > self.max_retransmits:
                from repro.resilience.recovery import RuntimeFailure

                raise RuntimeFailure(
                    f"message {src}->{dst} failed {attempts} consecutive "
                    f"transmissions ({words} words)",
                    task=f"{src}->{dst}",
                    failure_kind="comm",
                )
            self.n_retransmits += 1

    @property
    def n_messages(self) -> int:
        return len(self.messages)

    @property
    def n_rounds(self) -> int:
        return len({m.round_id for m in self.messages})

    @property
    def total_words(self) -> int:
        return sum(m.words for m in self.messages)

    def time(self, model: AlphaBeta) -> float:
        """Alpha-beta time: per round, latency + the busiest receiver."""
        rounds: dict[int, dict[int, int]] = {}
        for m in self.messages:
            rounds.setdefault(m.round_id, {}).setdefault(m.dst, 0)
            rounds[m.round_id][m.dst] += m.words
        total = 0.0
        for per_dst in rounds.values():
            total += model.alpha + model.beta * max(per_dst.values())
        return total


@dataclass(frozen=True)
class RowBlocks:
    """Block-row distribution of ``m`` rows over ``P`` ranks.

    Rank ``r`` owns the contiguous rows ``range(*bounds(r))``; the
    partition matches :meth:`repro.core.layout.BlockLayout.panel_chunks`
    so the distributed tournament selects the same pivots as the
    shared-memory one.
    """

    m: int
    P: int

    def __post_init__(self) -> None:
        if self.P < 1 or self.m < 1:
            raise ValueError(f"invalid distribution m={self.m}, P={self.P}")

    def bounds(self, rank: int) -> tuple[int, int]:
        per = -(-self.m // self.P)
        r0 = min(self.m, rank * per)
        r1 = min(self.m, (rank + 1) * per)
        return r0, r1

    def owner(self, row: int) -> int:
        per = -(-self.m // self.P)
        return min(self.P - 1, row // per)

    @property
    def active_ranks(self) -> list[int]:
        return [r for r in range(self.P) if self.bounds(r)[0] < self.bounds(r)[1]]

    def scatter(self, A: np.ndarray) -> dict[int, np.ndarray]:
        """Initial data distribution (not counted as communication)."""
        return {r: A[slice(*self.bounds(r))].copy() for r in self.active_ranks}
