"""Counting communication channel and row-block distribution.

The simulation is SPMD-by-coordination: the algorithm code moves NumPy
arrays between per-rank storage through :class:`CommLog`, which records
every message.  Communication *time* is evaluated afterwards under an
alpha-beta model with per-round latency: messages in the same round
(tree level) overlap, so a round costs
``alpha + beta * max_words_into_one_rank``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AlphaBeta", "CommLog", "RowBlocks"]


@dataclass(frozen=True)
class AlphaBeta:
    """Latency-bandwidth communication model.

    ``alpha`` seconds per message round, ``beta`` seconds per word.
    """

    alpha: float = 1e-6
    beta: float = 1e-9


@dataclass
class Message:
    src: int
    dst: int
    words: int
    round_id: int


@dataclass
class CommLog:
    """Records every rank-to-rank transfer, grouped into rounds.

    A *round* is a synchronization step: the tree level in TSLU/TSQR,
    or one column's pivot reduction in the classic panel.  Messages in
    one round are assumed concurrent; receiving is serialized per rank.
    """

    messages: list[Message] = field(default_factory=list)
    _round: int = 0

    def new_round(self) -> int:
        self._round += 1
        return self._round

    def send(self, src: int, dst: int, payload: np.ndarray | int | float) -> None:
        """Record a transfer of *payload* from rank *src* to rank *dst*."""
        if src == dst:
            return  # local, no communication
        words = int(np.asarray(payload).size)
        self.messages.append(Message(src=src, dst=dst, words=words, round_id=self._round))

    @property
    def n_messages(self) -> int:
        return len(self.messages)

    @property
    def n_rounds(self) -> int:
        return len({m.round_id for m in self.messages})

    @property
    def total_words(self) -> int:
        return sum(m.words for m in self.messages)

    def time(self, model: AlphaBeta) -> float:
        """Alpha-beta time: per round, latency + the busiest receiver."""
        rounds: dict[int, dict[int, int]] = {}
        for m in self.messages:
            rounds.setdefault(m.round_id, {}).setdefault(m.dst, 0)
            rounds[m.round_id][m.dst] += m.words
        total = 0.0
        for per_dst in rounds.values():
            total += model.alpha + model.beta * max(per_dst.values())
        return total


@dataclass(frozen=True)
class RowBlocks:
    """Block-row distribution of ``m`` rows over ``P`` ranks.

    Rank ``r`` owns the contiguous rows ``range(*bounds(r))``; the
    partition matches :meth:`repro.core.layout.BlockLayout.panel_chunks`
    so the distributed tournament selects the same pivots as the
    shared-memory one.
    """

    m: int
    P: int

    def __post_init__(self) -> None:
        if self.P < 1 or self.m < 1:
            raise ValueError(f"invalid distribution m={self.m}, P={self.P}")

    def bounds(self, rank: int) -> tuple[int, int]:
        per = -(-self.m // self.P)
        r0 = min(self.m, rank * per)
        r1 = min(self.m, (rank + 1) * per)
        return r0, r1

    def owner(self, row: int) -> int:
        per = -(-self.m // self.P)
        return min(self.P - 1, row // per)

    @property
    def active_ranks(self) -> list[int]:
        return [r for r in range(self.P) if self.bounds(r)[0] < self.bounds(r)[1]]

    def scatter(self, A: np.ndarray) -> dict[int, np.ndarray]:
        """Initial data distribution (not counted as communication)."""
        return {r: A[slice(*self.bounds(r))].copy() for r in self.active_ranks}
