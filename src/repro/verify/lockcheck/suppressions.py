"""Reviewed suppression file for known-intentional lockcheck findings.

Format of ``suppressions.txt`` (one suppression per line)::

    RULE | message-substring | reason the exception is intentional

* ``RULE`` must equal the finding's rule id (``LK001`` … ``LK102``).
* ``message-substring`` is matched with plain ``in`` against the
  finding's message.  Finding messages begin with a stable ``[scope]``
  prefix that carries no line numbers, so patterns written against it
  survive unrelated edits; patterns containing ``:<line>`` are rejected
  at load time for that reason.
* The reason is mandatory — a suppression nobody can justify is a bug.

Blank lines and ``#`` comments are ignored.  Unused suppressions are
reported (as info findings) so the file cannot silently rot.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from repro.verify.findings import Finding

__all__ = ["Suppression", "SuppressionFile", "apply_suppressions", "load_suppressions"]

DEFAULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "suppressions.txt")

_LINE_NUMBER = re.compile(r"\.py:\d")


@dataclass(frozen=True)
class Suppression:
    rule: str
    pattern: str
    reason: str
    lineno: int

    def matches(self, finding: Finding) -> bool:
        return finding.rule == self.rule and self.pattern in finding.message


@dataclass
class SuppressionFile:
    path: str
    entries: list[Suppression] = field(default_factory=list)


def load_suppressions(path: str | None = None) -> SuppressionFile:
    """Parse the suppression file; raises ``ValueError`` on bad lines."""
    path = path or DEFAULT_PATH
    out = SuppressionFile(path)
    if not os.path.exists(path):
        return out
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|")]
            if len(parts) != 3 or not all(parts):
                raise ValueError(
                    f"{path}:{lineno}: expected 'RULE | pattern | reason', got {line!r}"
                )
            rule, pattern, reason = parts
            if not re.fullmatch(r"LK\d{3}", rule):
                raise ValueError(f"{path}:{lineno}: bad rule id {rule!r}")
            if _LINE_NUMBER.search(pattern):
                raise ValueError(
                    f"{path}:{lineno}: pattern {pattern!r} pins a line number; "
                    f"match on the stable [scope] prefix instead"
                )
            out.entries.append(Suppression(rule, pattern, reason, lineno))
    return out


def apply_suppressions(
    findings: list[Finding], suppressions: SuppressionFile
) -> tuple[list[Finding], list[Finding]]:
    """``(kept, notes)``: unsuppressed findings plus bookkeeping notes.

    Each suppressed finding becomes an ``info`` note naming the
    suppression that absorbed it; each suppression that matched nothing
    becomes an ``info`` note flagging it as stale (so dead entries are
    visible in review, without failing the gate).
    """
    kept: list[Finding] = []
    notes: list[Finding] = []
    used: set[int] = set()
    for finding in findings:
        hit = next((s for s in suppressions.entries if s.matches(finding)), None)
        if hit is None:
            kept.append(finding)
            continue
        used.add(hit.lineno)
        notes.append(
            Finding(
                rule=finding.rule,
                severity="info",
                graph=finding.graph,
                message=(
                    f"suppressed ({suppressions.path.rsplit(os.sep, 1)[-1]}:{hit.lineno}: "
                    f"{hit.reason}): {finding.message.splitlines()[0]}"
                ),
            )
        )
    for s in suppressions.entries:
        if s.lineno not in used:
            notes.append(
                Finding(
                    rule="LK000",
                    severity="info",
                    graph="lockcheck",
                    message=(
                        f"stale suppression at {suppressions.path}:{s.lineno} "
                        f"({s.rule} | {s.pattern}) matched no finding"
                    ),
                )
            )
    return kept, notes
