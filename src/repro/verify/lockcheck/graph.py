"""Lock-order graph construction and lint-rule evaluation.

Consumes the per-function summaries from
:mod:`repro.verify.lockcheck.static` and produces:

* an interprocedural **lock-order graph** — an edge ``A -> B`` means
  some code path acquires lock *B* while holding lock *A*, either in
  one function or through a chain of calls (acquisitions are propagated
  over a name-resolved call graph to a fixpoint, with the discovery
  chain kept as the witness path);
* **findings** for the rule catalogue (see ``docs/VERIFICATION.md``):

  ========  ========  ====================================================
  rule      severity  meaning
  ========  ========  ====================================================
  LK001     error     lock-order cycle (potential deadlock), with a
                      witness path naming file:line pairs per edge; also
                      re-acquisition of a non-reentrant lock (self-edge)
  LK002     warning   blocking call (pipe ``recv``/``send``, untimed
                      ``join``/``poll``/``get``, ``sleep``, untimed
                      ``Condition.wait``) while holding a lock
  LK003     warning   untimed ``Condition.wait()`` — a missed notify
                      hangs the waiter forever
  LK004     warning   explicit ``acquire()`` with no ``release()`` in a
                      ``finally`` block of the same function
  LK005     warning   lock-coverage inconsistency: an attribute written
                      both under and outside the same class-owned lock
                      (RacerD-style)
  LK006     warning   bare ``threading.Lock/RLock/Condition`` not created
                      through the ``repro.runtime.sync`` factories
  LK007     error     sync-factory call whose name is not a string
                      literal (defeats the analysis)
  ========  ========  ====================================================

Every finding's message begins with a stable ``[scope]`` prefix (no
line numbers) so suppression patterns survive unrelated edits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.verify.findings import Finding
from repro.verify.lockcheck.static import (
    CallEvent,
    ModuleIndex,
    Site,
    index_package,
    index_sources,
)

__all__ = ["AnalysisResult", "EdgeWitness", "analyze", "analyze_sources"]


def _short(qual: str) -> str:
    """Human name: ``runtime/engine.py:C._run.<locals>.worker`` -> ``engine.py:C._run.worker``."""
    path, _, func = qual.partition(":")
    return f"{path.rsplit('/', 1)[-1]}:{func.replace('.<locals>.', '.')}"


@dataclass(frozen=True)
class EdgeWitness:
    """One observation supporting a lock-order edge ``src -> dst``."""

    func: str  # short qualname where src was held
    held_site: Site  # where src was acquired
    acq_site: Site  # where dst is (ultimately) acquired
    via: tuple[str, ...] = ()  # call chain, outermost first

    def describe(self) -> str:
        chain = f" via {' -> '.join(self.via)}" if self.via else ""
        return f"{self.func} holds at {self.held_site}, acquires at {self.acq_site}{chain}"


@dataclass
class AnalysisResult:
    """Everything the static pass knows about the analyzed tree."""

    index: ModuleIndex
    edges: dict[tuple[str, str], list[EdgeWitness]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    entry_locks: dict[str, tuple[str, ...]] = field(default_factory=dict)
    cycles: list[tuple[str, ...]] = field(default_factory=list)

    def edge_names(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def to_json(self) -> dict:
        return {
            "locks": {
                name: {"kind": d.kind, "site": str(d.site), "owner": d.owner}
                for name, d in sorted(self.index.locks.items())
            },
            "edges": {
                f"{a} -> {b}": [w.describe() for w in ws[:3]]
                for (a, b), ws in sorted(self.edges.items())
            },
            "entry_points": {k: list(v) for k, v in sorted(self.entry_locks.items())},
            "cycles": [list(c) for c in self.cycles],
            "findings": [
                {"rule": f.rule, "severity": f.severity, "message": f.message}
                for f in self.findings
            ],
        }


# ----------------------------------------------------------------------
# Call resolution and acquisition propagation
# ----------------------------------------------------------------------
#: Method names too stdlib-common to resolve by name alone: an untyped
#: receiver calling one of these is far more likely a dict/pipe/file/
#: process than a project object, and by-name resolution would wire the
#: call graph through unrelated classes.  Typed receivers (constructor
#: inference) always resolve, so project calls through these names are
#: still tracked whenever the object's origin is visible.
_COMMON_METHODS = frozenset(
    {
        "add", "append", "clear", "close", "complete", "copy", "count",
        "destroy", "discard", "extend", "flush", "get", "index", "insert",
        "is_set", "items", "join", "keys", "kill", "pop", "popleft", "put",
        "read", "recv", "remove", "reset", "result", "run", "send", "set",
        "sort", "start", "submit", "terminate", "update", "values", "wait",
        "write",
    }
)


class _CallGraph:
    def __init__(self, index: ModuleIndex) -> None:
        self.index = index

    def resolve(self, caller: str, call: CallEvent) -> list[str]:
        idx = self.index
        if call.kind == "self" and call.cls is not None:
            hit = idx.class_methods.get((call.cls, call.name))
            if hit is not None:
                return [hit]
            return []
        if call.kind == "method":
            if call.types:
                # Typed receiver: exactly the candidate classes' methods.
                return [
                    q
                    for t in call.types
                    if (q := idx.class_methods.get((t, call.name))) is not None
                ]
            if call.name in _COMMON_METHODS:
                # Stdlib-common name on an untyped receiver: resolve
                # only via name affinity — the receiver identifier names
                # the class family ('frontier' -> CentralFrontier /
                # StealingFrontier, 'store' -> MemoryStore / FileStore).
                hint = call.recv.lstrip("_").lower()
                if len(hint) >= 4:
                    return [
                        q
                        for t in sorted(idx.classes)
                        if hint in t.lower()
                        and (q := idx.class_methods.get((t, call.name))) is not None
                    ]
                return []
            # Untyped receiver, project-specific name: every project
            # method of that name, plus module-level functions
            # (module-qualified calls look like attribute access).
            out = list(idx.methods_by_name.get(call.name, ()))
            out += idx.funcs_by_name.get(call.name, ())
            return out
        # Bare-name call: module-level functions anywhere, plus nested
        # closures visible from the caller's scope.
        out = list(idx.funcs_by_name.get(call.name, ()))
        for qual in idx.nested_funcs.get(call.name, ()):
            parent = qual.rsplit(".<locals>.", 1)[0]
            if caller == parent or caller.startswith(parent + ".<locals>."):
                out.append(qual)
        return out


#: acqstar[qual][lock] = (acquire site, call chain as short-name steps)
_AcqStar = dict[str, dict[str, tuple[Site, tuple[str, ...]]]]


def _propagate_acquires(index: ModuleIndex, cg: _CallGraph) -> _AcqStar:
    acqstar: _AcqStar = {}
    for qual, summary in index.functions.items():
        direct: dict[str, tuple[Site, tuple[str, ...]]] = {}
        for acq in summary.acquires:
            direct.setdefault(acq.lock, (acq.site, ()))
        acqstar[qual] = direct

    callers: dict[str, list[tuple[str, CallEvent]]] = {}
    for qual, summary in index.functions.items():
        for call in summary.calls:
            for callee in cg.resolve(qual, call):
                callers.setdefault(callee, []).append((qual, call))

    work = deque(index.functions)
    while work:
        callee = work.popleft()
        callee_acq = acqstar.get(callee)
        if not callee_acq:
            continue
        for caller, call in callers.get(callee, ()):
            mine = acqstar[caller]
            changed = False
            for lock, (site, chain) in callee_acq.items():
                if lock not in mine:
                    step = f"{_short(callee)} ({call.site})"
                    mine[lock] = (site, (step,) + chain)
                    changed = True
            if changed:
                work.append(caller)
    return acqstar


def _propagate_blocking(index: ModuleIndex, cg: _CallGraph) -> dict[str, tuple]:
    """qual -> (what, site, chain) for functions that may block."""
    blockstar: dict[str, tuple] = {}
    for qual, summary in index.functions.items():
        if summary.blocking:
            ev = summary.blocking[0]
            blockstar[qual] = (ev.what, ev.site, ())
        for wait in summary.waits:
            if not wait.timed and qual not in blockstar:
                blockstar[qual] = (f"{wait.lock}.wait() [untimed]", wait.site, ())
    callers: dict[str, list[tuple[str, CallEvent]]] = {}
    for qual, summary in index.functions.items():
        for call in summary.calls:
            for callee in cg.resolve(qual, call):
                callers.setdefault(callee, []).append((qual, call))
    work = deque(blockstar)
    while work:
        callee = work.popleft()
        what, site, chain = blockstar[callee]
        for caller, call in callers.get(callee, ()):
            if caller not in blockstar:
                step = f"{_short(callee)} ({call.site})"
                blockstar[caller] = (what, site, (step,) + chain)
                work.append(caller)
    return blockstar


# ----------------------------------------------------------------------
# Edge construction
# ----------------------------------------------------------------------
def _build_edges(
    index: ModuleIndex, cg: _CallGraph, acqstar: _AcqStar
) -> dict[tuple[str, str], list[EdgeWitness]]:
    edges: dict[tuple[str, str], list[EdgeWitness]] = {}

    def add(src: str, dst: str, witness: EdgeWitness) -> None:
        edges.setdefault((src, dst), []).append(witness)

    for qual, summary in index.functions.items():
        short = _short(qual)
        for acq in summary.acquires:
            for held, hline in acq.held:
                if held == acq.lock:
                    continue  # intra-with re-entry handled as self-edge below
                add(held, acq.lock, EdgeWitness(short, Site(summary.path, hline), acq.site))
        for call in summary.calls:
            if not call.held:
                continue
            for callee in cg.resolve(qual, call):
                for lock, (site, chain) in acqstar.get(callee, {}).items():
                    step = f"{_short(callee)} ({call.site})"
                    for held, hline in call.held:
                        add(
                            held,
                            lock,
                            EdgeWitness(
                                short, Site(summary.path, hline), site, (step,) + chain
                            ),
                        )
    return edges


# ----------------------------------------------------------------------
# Cycle detection (Tarjan SCC + shortest cycle per SCC)
# ----------------------------------------------------------------------
def _sccs(adj: dict[str, set[str]]) -> list[list[str]]:
    order: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adj.get(root, ()))))]
        order[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in order:
                    order[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], order[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == order[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                out.append(scc)

    for node in sorted(adj):
        if node not in order:
            strongconnect(node)
    return out


def _shortest_cycle(adj: dict[str, set[str]], scc: set[str]) -> tuple[str, ...]:
    start = min(scc)
    # BFS from start back to start within the SCC.
    parent: dict[str, str] = {}
    q = deque([start])
    seen = {start}
    while q:
        node = q.popleft()
        for nxt in sorted(adj.get(node, ())):
            if nxt == start:
                path = [node]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                path.reverse()
                return tuple(path) + (start,)
            if nxt in scc and nxt not in seen:
                seen.add(nxt)
                parent[nxt] = node
                q.append(nxt)
    return (start, start)  # pragma: no cover - SCC guarantees a cycle


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _rule_cycles(result: AnalysisResult) -> None:
    index = result.index
    adj: dict[str, set[str]] = {}
    for (a, b), _ws in result.edges.items():
        if a != b:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
    for scc in _sccs(adj):
        if len(scc) < 2:
            continue
        cycle = _shortest_cycle(adj, set(scc))
        result.cycles.append(cycle)
        lines = []
        for i in range(len(cycle) - 1):
            w = result.edges[(cycle[i], cycle[i + 1])][0]
            lines.append(f"  {cycle[i]} -> {cycle[i + 1]}: {w.describe()}")
        result.findings.append(
            Finding(
                rule="LK001",
                severity="error", graph="lockcheck",
                message=(
                    f"[cycle {' -> '.join(cycle)}] lock-order cycle "
                    f"(potential deadlock):\n" + "\n".join(lines)
                ),
            )
        )
    # Self-edges on non-reentrant locks.
    for (a, b), ws in sorted(result.edges.items()):
        if a != b:
            continue
        ldef = index.locks.get(a)
        if ldef is not None and ldef.kind == "rlock":
            continue
        result.findings.append(
            Finding(
                rule="LK001",
                severity="error", graph="lockcheck",
                message=(
                    f"[self {a}] non-reentrant lock may be re-acquired while "
                    f"held: {ws[0].describe()}"
                ),
            )
        )


def _rule_blocking(result: AnalysisResult, cg: _CallGraph, blockstar: dict) -> None:
    index = result.index
    seen: set[tuple[str, str, str]] = set()
    for qual, summary in index.functions.items():
        short = _short(qual)
        for ev in summary.blocking:
            held = ",".join(sorted({h for h, _ in ev.held}))
            key = (short, held, ev.what)
            if key in seen:
                continue
            seen.add(key)
            result.findings.append(
                Finding(
                    rule="LK002",
                    severity="warning", graph="lockcheck",
                    message=(
                        f"[{short} holding {held}] blocking call {ev.what} "
                        f"at {ev.site} while holding a lock"
                    ),
                )
            )
        for call in summary.calls:
            if not call.held:
                continue
            for callee in cg.resolve(qual, call):
                hit = blockstar.get(callee)
                if hit is None:
                    continue
                what, site, chain = hit
                held = ",".join(sorted({h for h, _ in call.held}))
                key = (short, held, f"{callee}:{what}")
                if key in seen:
                    continue
                seen.add(key)
                via = " -> ".join((f"{_short(callee)} ({call.site})",) + chain)
                result.findings.append(
                    Finding(
                        rule="LK002",
                        severity="warning", graph="lockcheck",
                        message=(
                            f"[{short} holding {held}] call chain may block "
                            f"({what} at {site}) while holding a lock; via {via}"
                        ),
                    )
                )


def _rule_untimed_wait(result: AnalysisResult) -> None:
    for qual, summary in result.index.functions.items():
        for wait in summary.waits:
            if wait.timed:
                continue
            result.findings.append(
                Finding(
                    rule="LK003",
                    severity="warning", graph="lockcheck",
                    message=(
                        f"[{_short(qual)} wait {wait.lock}] untimed Condition.wait() "
                        f"at {wait.site}; a missed notify hangs this thread forever "
                        f"(use wait(timeout) in a re-check loop)"
                    ),
                )
            )


def _rule_acquire_discipline(result: AnalysisResult) -> None:
    for qual, summary in result.index.functions.items():
        for acq in summary.explicit_acquires:
            if acq.lock in summary.releases_in_finally:
                continue
            result.findings.append(
                Finding(
                    rule="LK004",
                    severity="warning", graph="lockcheck",
                    message=(
                        f"[{_short(qual)} acquire {acq.lock}] explicit acquire() at "
                        f"{acq.site} with no release() in a finally block of the "
                        f"same function (prefer 'with' or try/finally)"
                    ),
                )
            )


def _rule_lock_coverage(result: AnalysisResult, cg: _CallGraph) -> None:
    index = result.index
    # Held-context for private methods: the intersection of class-lock
    # held-sets over every in-project call site (a private method only
    # called with the lock held is effectively "under" that lock).
    context: dict[str, set[str]] = {}
    callsites: dict[str, list[tuple[str, set[str]]]] = {}
    for qual, summary in index.functions.items():
        for call in summary.calls:
            held = {h for h, _ in call.held}
            for callee in cg.resolve(qual, call):
                callsites.setdefault(callee, []).append((qual, held))
    for qual, summary in index.functions.items():
        if summary.cls is None or not summary.name.startswith("_"):
            continue
        sites = callsites.get(qual)
        if sites:
            ctx = set(sites[0][1])
            for _, s in sites[1:]:
                ctx &= s
            context[qual] = ctx

    # Functions reachable only from constructors run before the object
    # is shared; their unlocked writes are initialization, not races.
    init_only: set[str] = {q for q, s in index.functions.items() if s.is_init}
    changed = True
    while changed:
        changed = False
        for qual in index.functions:
            if qual in init_only:
                continue
            sites = callsites.get(qual)
            if sites and all(c in init_only for c, _ in sites):
                init_only.add(qual)
                changed = True

    for cls, lock_attrs in sorted(index.class_locks.items()):
        own_locks = set(lock_attrs.values())
        writes: dict[str, list[tuple[Site, set[str], str]]] = {}
        for qual, summary in index.functions.items():
            if summary.cls != cls or summary.is_init or qual in init_only:
                continue
            ctx = context.get(qual, set())
            for w in summary.writes:
                if w.attr in lock_attrs:
                    continue
                eff = ({h for h, _ in w.held} | ctx) & own_locks
                writes.setdefault(w.attr, []).append((w.site, eff, _short(qual)))
        for attr, entries in sorted(writes.items()):
            locked = [e for e in entries if e[1]]
            unlocked = [e for e in entries if not e[1]]
            if not locked or not unlocked:
                continue
            lock = sorted(locked[0][1])[0]
            lsite, _, lfunc = locked[0]
            usite, _, ufunc = unlocked[0]
            result.findings.append(
                Finding(
                    rule="LK005",
                    severity="warning", graph="lockcheck",
                    message=(
                        f"[{cls}.{attr} vs {lock}] attribute written under the lock "
                        f"({lfunc} at {lsite}) and outside it ({ufunc} at {usite}) — "
                        f"lock-coverage inconsistency (possible data race)"
                    ),
                )
            )


def _rule_hygiene(result: AnalysisResult) -> None:
    for site in result.index.bare_primitives:
        result.findings.append(
            Finding(
                rule="LK006",
                severity="warning", graph="lockcheck",
                message=(
                    f"[bare {site.path.rsplit('/', 1)[-1]}] bare threading primitive at "
                    f"{site}; create locks via repro.runtime.sync factories so they "
                    f"are named, analyzable, and witnessable"
                ),
            )
        )
    for site in result.index.nonliteral_names:
        result.findings.append(
            Finding(
                rule="LK007",
                severity="error", graph="lockcheck",
                message=(
                    f"[nonliteral {site.path.rsplit('/', 1)[-1]}] sync-factory call at "
                    f"{site} whose lock name is not a string literal; lockcheck "
                    f"cannot track this lock"
                ),
            )
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _entry_locks(index: ModuleIndex, acqstar: _AcqStar) -> dict[str, tuple[str, ...]]:
    out: dict[str, tuple[str, ...]] = {}
    by_name: dict[str, list[str]] = {}
    for qual, summary in index.functions.items():
        by_name.setdefault(summary.name, []).append(qual)
    for name, _site in index.entry_points:
        for qual in by_name.get(name, ()):
            locks = tuple(sorted(acqstar.get(qual, {})))
            out[_short(qual)] = locks
    return out


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def analyze(root: str | None = None) -> AnalysisResult:
    """Run the full static pass over the repro package (or *root*)."""
    return _analyze(index_package(root))


def analyze_sources(sources: dict[str, str]) -> AnalysisResult:
    """Run the full static pass over in-memory ``{path: source}`` pairs."""
    return _analyze(index_sources(sources))


def _analyze(index: ModuleIndex) -> AnalysisResult:
    cg = _CallGraph(index)
    acqstar = _propagate_acquires(index, cg)
    blockstar = _propagate_blocking(index, cg)
    result = AnalysisResult(index=index)
    result.edges = _build_edges(index, cg, acqstar)
    result.entry_locks = _entry_locks(index, acqstar)
    _rule_cycles(result)
    _rule_blocking(result, cg, blockstar)
    _rule_untimed_wait(result)
    _rule_acquire_discipline(result)
    _rule_lock_coverage(result, cg)
    _rule_hygiene(result)
    result.findings.sort(key=lambda f: (f.rule, f.message))
    return result
