"""Mutation self-test: verify that lockcheck detects what it claims to.

In the spirit of the verify suite's edge-drop self-test (PR 3), this
injects two synthetic defects into a pristine fixture and requires the
static pass to name *exactly* them, by site:

1. a **lock-order inversion** — a method acquiring ``fixture.audit``
   then ``fixture.accounts`` while the rest of the class orders them
   the other way — must be reported as precisely that LK001 cycle,
   with the injected line in the witness path;
2. an **unlocked write** — a public method writing an attribute that
   every other method guards — must be reported as an LK005
   lock-coverage inconsistency at precisely the injected line.

A third leg exercises the dynamic machinery without threads: a
hand-built witness containing an acquisition order the static graph
does not predict must produce an LK101 analysis-gap finding.

The pristine fixture must analyze clean — a self-test that only checks
detection would pass for an analyzer that flags everything.
"""

from __future__ import annotations

from repro.runtime.sync import LockWitness
from repro.verify.lockcheck.graph import analyze_sources
from repro.verify.lockcheck.witness import cross_check

__all__ = ["lock_self_test"]

_FIXTURE = '''\
from repro.runtime.sync import make_lock


class Transfer:
    def __init__(self):
        self._accounts = make_lock("fixture.accounts")
        self._audit = make_lock("fixture.audit")
        self.balance = 0
        self.trail = 0

    def deposit(self, amount):
        with self._accounts:
            self.balance += amount
            with self._audit:
                self.trail += 1

    def withdraw(self, amount):
        with self._accounts:
            self.balance -= amount
            with self._audit:
                self.trail += 1
'''

_INVERSION = '''\

    def audit_sweep(self):
        with self._audit:
            with self._accounts:
                self.balance += 0
'''

_UNLOCKED_WRITE = '''\

    def reset(self):
        self.balance = 0
'''


def _line_of(source: str, needle: str) -> int:
    for i, line in enumerate(source.splitlines(), start=1):
        if needle in line.strip():
            return i
    raise AssertionError(f"fixture lost its marker line {needle!r}")


def lock_self_test(verbose: bool = False) -> int:
    """Run the lockcheck mutation self-test; returns a process exit code."""
    failures = 0

    pristine = analyze_sources({"fixture.py": _FIXTURE})
    if pristine.findings:
        print("lock self-test FAIL: pristine fixture is not clean:")
        for f in pristine.findings:
            print(f"  {f}")
        failures += 1

    # 1. Lock-order inversion -> exactly one LK001 cycle naming both locks
    #    and the injected acquisition site.
    mutant_src = _FIXTURE + _INVERSION
    # The injected acquisition is the 'with self._accounts:' *after* the
    # audit_sweep header (deposit/withdraw have their own).
    offset = _line_of(mutant_src, "def audit_sweep")
    inner = next(
        i
        for i, line in enumerate(mutant_src.splitlines(), start=1)
        if i > offset and "with self._accounts:" in line
    )
    site = f"fixture_mut.py:{inner}"
    mutant = analyze_sources({"fixture_mut.py": mutant_src})
    cycles = [f for f in mutant.findings if f.rule == "LK001"]
    hit = [
        f
        for f in cycles
        if "fixture.accounts" in f.message and "fixture.audit" in f.message and site in f.message
    ]
    if len(cycles) == 1 and hit and len(mutant.findings) == 1:
        if verbose:
            print(f"lock self-test: injected inversion at {site}; reported:\n  {hit[0]}")
        print(f"lock self-test ok: lock-order inversion detected as LK001 at {site}")
    else:
        print(
            f"lock self-test FAIL: injected inversion at {site}; expected exactly "
            f"one LK001 naming it, got {[str(f) for f in mutant.findings]}"
        )
        failures += 1

    # 2. Unlocked write -> exactly one LK005 naming attr and injected site
    #    (the write after the reset header — __init__ has its own).
    mutant_src = _FIXTURE + _UNLOCKED_WRITE
    offset = _line_of(mutant_src, "def reset")
    inner = next(
        i
        for i, line in enumerate(mutant_src.splitlines(), start=1)
        if i > offset and "self.balance = 0" in line
    )
    site = f"fixture_mut.py:{inner}"
    mutant = analyze_sources({"fixture_mut.py": mutant_src})
    races = [f for f in mutant.findings if f.rule == "LK005"]
    hit = [f for f in races if "Transfer.balance" in f.message and site in f.message]
    if len(races) == 1 and hit and len(mutant.findings) == 1:
        if verbose:
            print(f"lock self-test: injected unlocked write at {site}; reported:\n  {hit[0]}")
        print(f"lock self-test ok: unlocked write detected as LK005 at {site}")
    else:
        print(
            f"lock self-test FAIL: injected unlocked write at {site}; expected "
            f"exactly one LK005 naming it, got {[str(f) for f in mutant.findings]}"
        )
        failures += 1

    # 3. Witness gap: an observed order the static graph does not predict.
    witness = LockWitness()
    witness.on_acquired("fixture.audit")
    witness.on_acquired("fixture.accounts")  # audit -> accounts: not in pristine graph
    witness.on_released("fixture.accounts", 0.0)
    witness.on_released("fixture.audit", 0.0)
    gaps = [f for f in cross_check(witness, pristine) if f.rule == "LK101"]
    if len(gaps) == 1 and "fixture.audit -> fixture.accounts" in gaps[0].message:
        print("lock self-test ok: unpredicted witnessed edge detected as LK101")
    else:
        print(
            f"lock self-test FAIL: expected one LK101 for the unpredicted edge, "
            f"got {[str(f) for f in gaps]}"
        )
        failures += 1

    return 1 if failures else 0
