"""AST-level discovery of locks, acquisitions and lock-relevant events.

This module is the *front half* of the lockcheck static pass: it parses
Python sources (normally the installed ``repro`` package itself) and
produces, per function, a :class:`FunctionSummary` of everything the
back half (:mod:`repro.verify.lockcheck.graph`) needs to build the
lock-order graph and evaluate the lint rules:

* **lock definitions** — calls to the :mod:`repro.runtime.sync`
  factories (``make_lock`` / ``make_rlock`` / ``make_condition``),
  whose mandatory literal name is the lock's identity everywhere
  (static findings, dynamic witness, suppressions);
* **acquisitions** — ``with <lock>:`` blocks and explicit
  ``.acquire()`` calls, each recorded with the set of locks already
  held at that point (the *held-set*), resolved through class
  attributes, module globals, function locals and closure scopes;
* **condition waits** (timed or not), **blocking calls** (``recv``,
  no-arg ``poll``, untimed ``join``, ``sleep``, pipe ``send``) with
  their held-sets;
* **self-attribute writes** with held-sets (for the RacerD-style
  lock-coverage rule);
* **calls** — every call that might resolve to project code, so the
  graph pass can propagate acquisitions interprocedurally;
* **thread entry points** — functions passed as ``target=`` to
  ``Thread``/``Process``.

The analysis is deliberately syntactic and conservative: it
over-approximates aliasing (a method call resolves to every project
method of that name) and never executes anything.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

__all__ = [
    "AcquireEvent",
    "BlockingEvent",
    "CallEvent",
    "FunctionSummary",
    "LockDef",
    "ModuleIndex",
    "Site",
    "WaitEvent",
    "WriteEvent",
    "index_package",
    "index_sources",
]

FACTORY_NAMES = frozenset({"make_lock", "make_rlock", "make_condition"})

#: Method names treated as potentially blocking when called with a lock
#: held.  ``join``/``poll`` only count when called without a timeout
#: argument; the others block by nature.
BLOCKING_ALWAYS = frozenset({"recv", "send", "sleep", "communicate"})
BLOCKING_IF_UNTIMED = frozenset({"join", "poll", "get"})

#: Files never analyzed: the sync wrapper itself (its raw ``threading``
#: usage is the one sanctioned exception) and generated/cache dirs.
EXCLUDE_SUFFIXES = ("runtime/sync.py",)


@dataclass(frozen=True)
class Site:
    """A file:line location inside the analyzed tree."""

    path: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass(frozen=True)
class LockDef:
    """One lock/condition created through a sync factory."""

    name: str  # the literal passed to the factory
    kind: str  # "lock" | "rlock" | "condition"
    site: Site
    owner: str  # "Class.attr", "func.var" or "<module>.var"


@dataclass(frozen=True)
class AcquireEvent:
    lock: str
    site: Site
    held: tuple[tuple[str, int], ...]  # (lock name, acquire line) pairs
    explicit: bool = False  # .acquire() call rather than a with block


@dataclass(frozen=True)
class WaitEvent:
    lock: str  # the condition's lock name
    site: Site
    timed: bool
    held: tuple[tuple[str, int], ...]  # locks held *besides* the condition's


@dataclass(frozen=True)
class BlockingEvent:
    what: str  # e.g. "conn.recv()"
    site: Site
    held: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class CallEvent:
    kind: str  # "self" | "method" | "func"
    name: str  # callee name (method or function)
    cls: str | None  # enclosing class for kind == "self"
    site: Site
    held: tuple[tuple[str, int], ...]
    #: candidate receiver classes inferred from constructor calls at the
    #: receiver's assignment sites; empty = unknown type
    types: tuple[str, ...] = ()
    #: receiver identifier (variable or attribute name) for name-affinity
    #: resolution when the type is unknown
    recv: str = ""


@dataclass(frozen=True)
class WriteEvent:
    attr: str  # self-attribute written
    site: Site
    held: tuple[tuple[str, int], ...]


@dataclass
class FunctionSummary:
    """Everything lock-relevant that one function does."""

    qualname: str  # "path.py:Class.method" / "path.py:fn.<locals>.inner"
    path: str
    name: str  # bare function name
    cls: str | None  # enclosing class, if a method
    line: int
    is_init: bool = False
    acquires: list[AcquireEvent] = field(default_factory=list)
    waits: list[WaitEvent] = field(default_factory=list)
    blocking: list[BlockingEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    writes: list[WriteEvent] = field(default_factory=list)
    releases_in_finally: set[str] = field(default_factory=set)
    explicit_acquires: list[AcquireEvent] = field(default_factory=list)


@dataclass
class ModuleIndex:
    """Aggregated discovery results over a set of modules."""

    locks: dict[str, LockDef] = field(default_factory=dict)  # by lock name
    lock_defs: list[LockDef] = field(default_factory=list)  # every def site
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    methods_by_name: dict[str, list[str]] = field(default_factory=dict)
    class_methods: dict[tuple[str, str], str] = field(default_factory=dict)
    funcs_by_name: dict[str, list[str]] = field(default_factory=dict)
    #: nested (closure) functions by bare name; resolvable only from
    #: their enclosing function's scope, never as attribute calls
    nested_funcs: dict[str, list[str]] = field(default_factory=dict)
    #: every class name defined in the analyzed tree
    classes: set[str] = field(default_factory=set)
    #: (Class, attr) -> candidate classes the attribute may hold,
    #: inferred from constructor calls in assignments
    attr_types: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    entry_points: list[tuple[str, Site]] = field(default_factory=list)
    bare_primitives: list[Site] = field(default_factory=list)
    nonliteral_names: list[Site] = field(default_factory=list)
    #: (Class, attr) -> lock name, across all modules (for with-target
    #: resolution on `self._x` / `obj._x`).
    attr_locks: dict[tuple[str, str], str] = field(default_factory=dict)
    #: lock attrs owned per class: Class -> {attr: lock name}
    class_locks: dict[str, dict[str, str]] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _factory_call(node: ast.AST) -> ast.Call | None:
    """The sync-factory call inside *node*'s subtree, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            name = None
            if isinstance(fn, ast.Name):
                name = fn.id
            elif isinstance(fn, ast.Attribute):
                name = fn.attr
            if name in FACTORY_NAMES:
                return sub
    return None


def _factory_kind(call: ast.Call) -> str:
    fn = call.func
    name = fn.id if isinstance(fn, ast.Name) else fn.attr  # type: ignore[union-attr]
    return {"make_lock": "lock", "make_rlock": "rlock", "make_condition": "condition"}[name]


def _literal_name(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
        call.args[0].value, str
    ):
        return call.args[0].value
    return None


def _ctor_types(expr: ast.AST, classes: set[str]) -> set[str]:
    """Project classes an expression *definitely* constructs.

    Structural, not a subtree scan: a plain constructor call yields its
    class; a ternary or ``or``-default yields the union of its branches
    *only if every branch is itself a known constructor* — one unknown
    branch (``self.frontier if ... else CentralFrontier()``) makes the
    whole type unknown, because trusting the partial answer would hide
    the other implementation's acquisitions from the call graph.
    """
    if isinstance(expr, ast.IfExp):
        a = _ctor_types(expr.body, classes)
        b = _ctor_types(expr.orelse, classes)
        return a | b if a and b else set()
    if isinstance(expr, ast.BoolOp):
        branches = [_ctor_types(v, classes) for v in expr.values]
        if all(branches):
            return set().union(*branches)
        return set()
    if isinstance(expr, ast.Call):
        fn = expr.func
        name = fn.id if isinstance(fn, ast.Name) else getattr(fn, "attr", None)
        return {name} if name in classes else set()
    return set()


def _recv_hint(recv: ast.AST) -> str:
    """The receiver's identifier, for name-affinity class matching."""
    if isinstance(recv, ast.Name):
        return recv.id
    if isinstance(recv, ast.Attribute):
        return recv.attr
    if isinstance(recv, ast.Subscript):
        return _recv_hint(recv.value)
    return ""


_BARE_PRIMITIVES = frozenset({"Lock", "RLock", "Condition"})


def _is_bare_primitive(call: ast.Call) -> bool:
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in _BARE_PRIMITIVES:
        base = fn.value
        return isinstance(base, ast.Name) and base.id == "threading"
    if isinstance(fn, ast.Name) and fn.id in _BARE_PRIMITIVES:
        return True
    return False


class _Scope:
    """Chained function-local maps: ``var -> lock name`` and ``var -> types``."""

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.local: dict[str, str] = {}
        self.types: dict[str, set[str]] = {}

    def lookup(self, var: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if var in scope.local:
                return scope.local[var]
            scope = scope.parent
        return None

    def lookup_types(self, var: str) -> set[str]:
        scope: _Scope | None = self
        while scope is not None:
            if var in scope.types:
                return scope.types[var]
            scope = scope.parent
        return set()


# ----------------------------------------------------------------------
# The per-module walker
# ----------------------------------------------------------------------
class _ModuleWalker:
    def __init__(self, path: str, tree: ast.Module, index: ModuleIndex) -> None:
        self.path = path
        self.tree = tree
        self.index = index
        self.module_locks: dict[str, str] = {}  # module-global var -> lock name

    def site(self, node: ast.AST) -> Site:
        return Site(self.path, getattr(node, "lineno", 0))

    # -- pass 0: class names (needed before any type inference) --------
    def collect_classes(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.index.classes.add(node.name)

    # -- pass 1: definitions -------------------------------------------
    def collect_defs(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._collect_assign_def(node, cls=None, var_map=self.module_locks)
            elif isinstance(node, ast.ClassDef):
                self._collect_class_defs(node)
        # Bare-primitive and non-literal-name sweeps are whole-tree.
        for sub in ast.walk(self.tree):
            if isinstance(sub, ast.Call):
                if _is_bare_primitive(sub):
                    self.index.bare_primitives.append(self.site(sub))
                fn = sub.func
                name = fn.id if isinstance(fn, ast.Name) else getattr(fn, "attr", None)
                if name in FACTORY_NAMES and _literal_name(sub) is None:
                    self.index.nonliteral_names.append(self.site(sub))

    def _register_lock(self, call: ast.Call, owner: str) -> str | None:
        name = _literal_name(call)
        if name is None:
            return None
        ldef = LockDef(name, _factory_kind(call), self.site(call), owner)
        self.index.lock_defs.append(ldef)
        self.index.locks.setdefault(name, ldef)
        return name

    def _collect_assign_def(self, node: ast.AST, cls: str | None, var_map: dict) -> None:
        """Assignments binding a factory call to a variable or attribute."""
        value = getattr(node, "value", None)
        if value is None:
            return
        call = _factory_call(value)
        if call is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]  # type: ignore[attr-defined]
        for t in targets:
            if isinstance(t, ast.Name):
                owner = f"{cls}.{t.id}" if cls else f"<module>.{t.id}"
                name = self._register_lock(call, owner)
                if name is not None:
                    var_map[t.id] = name
            elif isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name):
                if t.value.id == "self" and cls is not None:
                    name = self._register_lock(call, f"{cls}.{t.attr}")
                    if name is not None:
                        self.index.attr_locks[(cls, t.attr)] = name
                        self.index.class_locks.setdefault(cls, {})[t.attr] = name

    def _collect_class_defs(self, cnode: ast.ClassDef) -> None:
        cls = cnode.name
        for item in cnode.body:
            # Dataclass-style: attr: T = field(default_factory=lambda: make_lock(...))
            if isinstance(item, (ast.Assign, ast.AnnAssign)):
                value = getattr(item, "value", None)
                if value is None:
                    continue
                call = _factory_call(value)
                if call is None:
                    continue
                target = item.targets[0] if isinstance(item, ast.Assign) else item.target
                if isinstance(target, ast.Name):
                    name = self._register_lock(call, f"{cls}.{target.id}")
                    if name is not None:
                        self.index.attr_locks[(cls, target.id)] = name
                        self.index.class_locks.setdefault(cls, {})[target.id] = name
            elif isinstance(item, ast.FunctionDef):
                for stmt in ast.walk(item):
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        self._collect_assign_def(stmt, cls=cls, var_map={})
                        self._collect_attr_types(stmt, cls)

    def _collect_attr_types(self, stmt: ast.AST, cls: str) -> None:
        value = getattr(stmt, "value", None)
        if value is None:
            return
        types = _ctor_types(value, self.index.classes)
        if not types:
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]  # type: ignore[attr-defined]
        for t in targets:
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                self.index.attr_types.setdefault((cls, t.attr), set()).update(types)

    # -- pass 2: function summaries ------------------------------------
    def summarize(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.FunctionDef):
                self._summarize_function(node, cls=None, prefix="", scope=_Scope())
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self._summarize_function(
                            item, cls=node.name, prefix=f"{node.name}.", scope=_Scope()
                        )

    def _summarize_function(
        self, fnode: ast.FunctionDef, cls: str | None, prefix: str, scope: _Scope
    ) -> None:
        qual = f"{self.path}:{prefix}{fnode.name}"
        summary = FunctionSummary(
            qualname=qual,
            path=self.path,
            name=fnode.name,
            cls=cls,
            line=fnode.lineno,
            is_init=fnode.name in ("__init__", "__post_init__"),
        )
        fscope = _Scope(scope)
        walker = _FunctionWalker(self, summary, cls, fscope)
        walker.walk_body(fnode.body)
        self.index.functions[qual] = summary
        if cls is not None:
            self.index.methods_by_name.setdefault(fnode.name, []).append(qual)
            self.index.class_methods[(cls, fnode.name)] = qual
        elif ".<locals>." in qual:
            self.index.nested_funcs.setdefault(fnode.name, []).append(qual)
        else:
            self.index.funcs_by_name.setdefault(fnode.name, []).append(qual)
        # Nested defs become their own summaries, sharing the local scope.
        for nested, ncls in walker.nested:
            self._summarize_function(
                nested, cls=ncls, prefix=f"{prefix}{fnode.name}.<locals>.", scope=fscope
            )


class _FunctionWalker:
    """Walks one function body tracking the held-lock stack."""

    def __init__(
        self,
        mod: _ModuleWalker,
        summary: FunctionSummary,
        cls: str | None,
        scope: _Scope,
    ) -> None:
        self.mod = mod
        self.summary = summary
        self.cls = cls
        self.scope = scope
        self.held: list[tuple[str, int]] = []  # (lock name, acquire line)
        self.nested: list[tuple[ast.FunctionDef, str | None]] = []
        self.finally_depth = 0

    # -- resolution -----------------------------------------------------
    def resolve_lock(self, node: ast.AST) -> str | None:
        """Resolve an expression to a lock name, or None."""
        index = self.mod.index
        if isinstance(node, ast.Name):
            name = self.scope.lookup(node.id)
            if name is not None:
                return name
            return self.mod.module_locks.get(node.id)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self" and self.cls is not None:
                hit = index.attr_locks.get((self.cls, node.attr))
                if hit is not None:
                    return hit
            # Cross-object attribute: unique attr name across classes.
            candidates = {
                lock
                for (_cls, attr), lock in index.attr_locks.items()
                if attr == node.attr
            }
            if len(candidates) == 1:
                return next(iter(candidates))
            return None
        if isinstance(node, ast.Subscript):
            return self.resolve_lock(node.value)
        return None

    def held_tuple(self) -> tuple[tuple[str, int], ...]:
        return tuple(self.held)

    # -- body walking ---------------------------------------------------
    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.FunctionDef):
            self.nested.append((stmt, None))
            return
        if isinstance(stmt, ast.ClassDef):
            return  # nested classes: out of scope
        if isinstance(stmt, ast.With):
            self._walk_with(stmt)
            return
        if isinstance(stmt, ast.Try):
            for s in stmt.body:
                self.walk_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self.walk_stmt(s)
            for s in stmt.orelse:
                self.walk_stmt(s)
            self.finally_depth += 1
            for s in stmt.finalbody:
                self.walk_stmt(s)
            self.finally_depth -= 1
            return
        # Assignments may bind locks (or typed objects) to locals.
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = getattr(stmt, "value", None)
            if value is not None:
                types = _ctor_types(value, self.mod.index.classes)
                if types:
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    )
                    for t in targets:
                        if isinstance(t, ast.Name):
                            self.scope.types.setdefault(t.id, set()).update(types)
                call = _factory_call(value)
                if call is not None:
                    self.mod._collect_assign_def(stmt, cls=self.cls, var_map={})
                    name = _literal_name(call)
                    if name is not None:
                        targets = (
                            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                        )
                        for t in targets:
                            if isinstance(t, ast.Name):
                                self.scope.local[t.id] = name
            self._record_writes(stmt)
            if value is not None:
                self.scan_expr(value)
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, (ast.If, ast.For, ast.While)):  # pragma: no cover
                    self.walk_stmt(sub)
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_writes(stmt)
            self.scan_expr(stmt.value)
            return
        # Control flow: walk tests/iterables as expressions, bodies as
        # statements with the same held-set (a may-analysis).
        if isinstance(stmt, (ast.If, ast.While)):
            self.scan_expr(stmt.test)
            for s in stmt.body:
                self.walk_stmt(s)
            for s in stmt.orelse:
                self.walk_stmt(s)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter)
            for s in stmt.body:
                self.walk_stmt(s)
            for s in stmt.orelse:
                self.walk_stmt(s)
            return
        if isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value)
            return
        if isinstance(stmt, (ast.Return, ast.Raise)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.scan_expr(sub)
            return
        # Anything else: scan expressions generically.
        for sub in ast.iter_child_nodes(stmt):
            if isinstance(sub, ast.expr):
                self.scan_expr(sub)

    def _walk_with(self, stmt: ast.With) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            lock = self.resolve_lock(item.context_expr)
            if lock is not None:
                self.summary.acquires.append(
                    AcquireEvent(lock, self.mod.site(item.context_expr), self.held_tuple())
                )
                self.held.append((lock, getattr(item.context_expr, "lineno", 0)))
                acquired.append(lock)
            else:
                self.scan_expr(item.context_expr)
        for s in stmt.body:
            self.walk_stmt(s)
        for _ in acquired:
            self.held.pop()

    def _record_writes(self, stmt: ast.stmt) -> None:
        if self.summary.is_init:
            return
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for t in targets:
            node = t
            if isinstance(node, ast.Subscript):
                node = node.value
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                self.summary.writes.append(
                    WriteEvent(node.attr, self.mod.site(t), self.held_tuple())
                )

    # -- expression scanning (calls) ------------------------------------
    def scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._handle_call(node)
            elif isinstance(node, (ast.Lambda,)):
                pass  # lambdas: bodies too dynamic to attribute usefully

    def _handle_call(self, call: ast.Call) -> None:
        fn = call.func
        site = self.mod.site(call)
        held = self.held_tuple()
        # Thread/Process entry points.
        ctor = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", None)
        if ctor in ("Thread", "Process"):
            for kw in call.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    self.mod.index.entry_points.append((kw.value.id, site))
        if not isinstance(fn, ast.Attribute):
            if isinstance(fn, ast.Name):
                if fn.id == "sleep":
                    self._blocking(f"{fn.id}()", site, held)
                self.summary.calls.append(CallEvent("func", fn.id, None, site, held))
            return
        method = fn.attr
        recv = fn.value
        lock = self.resolve_lock(recv)
        has_timeout = bool(call.args) or any(k.arg == "timeout" for k in call.keywords)
        if method == "acquire" and lock is not None:
            ev = AcquireEvent(lock, site, held, explicit=True)
            self.summary.acquires.append(ev)
            self.summary.explicit_acquires.append(ev)
            self.held.append((lock, site.line))
            return
        if method == "release" and lock is not None:
            if self.finally_depth > 0:
                self.summary.releases_in_finally.add(lock)
            for i in range(len(self.held) - 1, -1, -1):
                if self.held[i][0] == lock:
                    del self.held[i]
                    break
            return
        if method == "wait" and lock is not None:
            others = tuple(h for h in held if h[0] != lock)
            self.summary.waits.append(WaitEvent(lock, site, has_timeout, others))
            if others and not has_timeout:
                self._blocking(f"{lock}.wait() [untimed]", site, others)
            return
        if method in BLOCKING_ALWAYS and held:
            self._blocking(f".{method}()", site, held)
        elif method in BLOCKING_IF_UNTIMED and held and not has_timeout and not call.args:
            self._blocking(f".{method}() [untimed]", site, held)
        # Call-graph edges.
        if isinstance(recv, ast.Name) and recv.id == "self" and self.cls is not None:
            self.summary.calls.append(CallEvent("self", method, self.cls, site, held))
        else:
            types = tuple(sorted(self._recv_types(recv)))
            self.summary.calls.append(
                CallEvent("method", method, None, site, held, types, _recv_hint(recv))
            )
        for arg in call.args:
            if isinstance(arg, ast.Call):
                self._handle_call(arg)

    def _recv_types(self, recv: ast.AST) -> set[str]:
        """Candidate project classes for a call receiver (empty = unknown)."""
        if isinstance(recv, ast.Name):
            return self.scope.lookup_types(recv.id)
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and self.cls is not None
        ):
            return self.mod.index.attr_types.get((self.cls, recv.attr), set())
        return set()

    def _blocking(self, what: str, site: Site, held: tuple) -> None:
        self.summary.blocking.append(BlockingEvent(what, site, held))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def index_sources(sources: dict[str, str]) -> ModuleIndex:
    """Analyze ``{path: source}`` pairs into one :class:`ModuleIndex`."""
    index = ModuleIndex()
    walkers = []
    for path, src in sorted(sources.items()):
        tree = ast.parse(src, filename=path)
        walkers.append(_ModuleWalker(path, tree, index))
    # Three passes: class names feed type inference, definitions across
    # *all* modules must exist before summarizing any (attribute and
    # type resolution are cross-module).
    for walker in walkers:
        walker.collect_classes()
    for walker in walkers:
        walker.collect_defs()
    for walker in walkers:
        walker.summarize()
    return index


def package_sources(root: str | None = None) -> dict[str, str]:
    """Read every ``.py`` under *root* (default: the repro package)."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    sources: dict[str, str] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            if any(rel.endswith(suffix) for suffix in EXCLUDE_SUFFIXES):
                continue
            with open(full, encoding="utf-8") as fh:
                sources[rel] = fh.read()
    return sources


def index_package(root: str | None = None) -> ModuleIndex:
    """Analyze the installed ``repro`` package (or *root*)."""
    return index_sources(package_sources(root))
