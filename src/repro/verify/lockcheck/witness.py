"""Cross-checking the dynamic lock witness against the static graph.

The dynamic half of lockcheck: a test (or a run under
``REPRO_LOCK_SANITIZE=1``) collects a
:class:`repro.runtime.sync.LockWitness` while real threads run real
work, then calls :func:`cross_check` to compare what actually happened
with what the static pass predicted:

* a **witnessed edge absent from the static graph** is an analysis gap
  — the static pass missed an acquisition path, so its deadlock-freedom
  claim has a hole (rule LK101, error);
* a **lock held across a process-pool round-trip**
  (:func:`repro.runtime.sync.note_roundtrip`) couples a critical
  section to another process's scheduling (rule LK102, warning) —
  intentional cases (the worker pool's per-core pipe locks) go in the
  suppression file;
* a **static cycle none of whose edges were ever witnessed** is likely
  an artifact of the analysis' over-approximation: :func:`apply_witness`
  downgrades such LK001 findings to warnings, annotated.

:func:`coverage` computes the fraction of *exercised* static edges the
witness actually observed (an edge counts as exercised when both its
locks were acquired at least once during the run), which the test
suite holds to the ≥90% acceptance bar.
"""

from __future__ import annotations

from repro.runtime.sync import LockWitness
from repro.verify.findings import Finding
from repro.verify.lockcheck.graph import AnalysisResult

__all__ = ["apply_witness", "coverage", "cross_check"]


def cross_check(
    witness: LockWitness,
    result: AnalysisResult,
    *,
    allowed_roundtrip: tuple[str, ...] = (),
) -> list[Finding]:
    """Findings from comparing a run's witness against the static graph."""
    findings: list[Finding] = []
    static_edges = result.edge_names()
    for a, b in sorted(witness.edge_names()):
        if (a, b) in static_edges:
            continue
        count = witness.edges.get((a, b), 0)
        findings.append(
            Finding(
                rule="LK101",
                severity="error",
                graph="lockcheck",
                message=(
                    f"[gap {a} -> {b}] witnessed acquisition order ({count}x) "
                    f"not predicted by the static lock-order graph — the static "
                    f"analysis missed an acquisition path; its deadlock-freedom "
                    f"claim has a hole"
                ),
            )
        )
    for name in sorted(witness.roundtrip_held):
        if name in allowed_roundtrip:
            continue
        findings.append(
            Finding(
                rule="LK102",
                severity="warning",
                graph="lockcheck",
                message=(
                    f"[roundtrip {name}] lock held across a process-pool pipe "
                    f"round-trip; the critical section now waits on another "
                    f"process's scheduling"
                ),
            )
        )
    return findings


def apply_witness(result: AnalysisResult, witness: LockWitness) -> list[Finding]:
    """Downgrade static LK001 cycle findings never witnessed at runtime.

    Returns a new findings list in which each LK001 *cycle* finding
    whose edges were never all observed by *witness* becomes a warning
    annotated as unwitnessed.  Self-edge findings and everything else
    pass through unchanged.
    """
    observed = witness.edge_names()
    witnessed_cycles = set()
    for cycle in result.cycles:
        edges = {(cycle[i], cycle[i + 1]) for i in range(len(cycle) - 1)}
        if edges <= observed:
            witnessed_cycles.add(" -> ".join(cycle))
    out: list[Finding] = []
    for f in result.findings:
        if f.rule == "LK001" and f.message.startswith("[cycle ") and f.severity == "error":
            tag = f.message[len("[cycle ") : f.message.index("]")]
            if tag not in witnessed_cycles:
                out.append(
                    Finding(
                        rule=f.rule,
                        severity="warning",
                        graph=f.graph,
                        message=f.message
                        + "\n  (downgraded: no edge order of this cycle was "
                        "witnessed at runtime; likely an over-approximation)",
                    )
                )
                continue
        out.append(f)
    return out


def coverage(
    witness: LockWitness, result: AnalysisResult
) -> tuple[float, set[tuple[str, str]], set[tuple[str, str]]]:
    """``(fraction, exercised, missed)`` of static edges the run observed.

    A static edge counts as *exercised* when both of its locks were
    acquired at least once during the witnessed run — edges between
    locks the workload never touched say nothing about the witness.
    """
    touched = set(witness.acquired)
    exercised = {
        (a, b) for (a, b) in result.edge_names() if a in touched and b in touched and a != b
    }
    if not exercised:
        return 1.0, set(), set()
    observed = witness.edge_names()
    missed = {e for e in exercised if e not in observed}
    return 1.0 - len(missed) / len(exercised), exercised, missed
