"""Lockcheck: static deadlock / lock-discipline analysis plus a dynamic
lock-witness sanitizer for the runtime and service layers.

The pass answers, for the executor stack itself (ExecutionEngine worker
loops, the process pool's per-core locks, the service layer's admission
/ breaker / supervisor machinery), the same question the race detector
answers for task graphs: *is the synchronization provably consistent?*

* :func:`analyze` / :func:`analyze_sources` — static AST pass:
  lock discovery, interprocedural lock-order graph, cycle detection
  with witness paths, lint rules LK001–LK007.
* :func:`cross_check` / :func:`apply_witness` / :func:`coverage` —
  compare a run's :class:`repro.runtime.sync.LockWitness` against the
  static graph (rules LK101/LK102, cycle downgrades, edge coverage).
* :func:`lock_self_test` — mutation self-test (injected inversion and
  unlocked write must be named by exact site).
* :func:`run_lockcheck` — everything above as one gated
  :class:`repro.verify.findings.Report`, suppressions applied.

Rule catalogue and suppression-file format: ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

from repro.verify.findings import Report
from repro.verify.lockcheck.graph import AnalysisResult, EdgeWitness, analyze, analyze_sources
from repro.verify.lockcheck.selftest import lock_self_test
from repro.verify.lockcheck.suppressions import (
    Suppression,
    SuppressionFile,
    apply_suppressions,
    load_suppressions,
)
from repro.verify.lockcheck.witness import apply_witness, coverage, cross_check

__all__ = [
    "AnalysisResult",
    "EdgeWitness",
    "Suppression",
    "SuppressionFile",
    "analyze",
    "analyze_sources",
    "apply_suppressions",
    "apply_witness",
    "coverage",
    "cross_check",
    "load_suppressions",
    "lock_self_test",
    "run_lockcheck",
]


def run_lockcheck(
    root: str | None = None, suppressions_path: str | None = None
) -> tuple[Report, AnalysisResult]:
    """The full static pass over the installed package, gated and suppressed.

    Returns ``(report, analysis)``: the report carries unsuppressed
    findings (gating) plus suppression bookkeeping notes; the analysis
    result carries the lock inventory, the lock-order graph and the
    per-entry-point reachable-lock sets for callers that want them
    (the dynamic cross-check, the JSON dump, tests).
    """
    analysis = analyze(root)
    suppressions = load_suppressions(suppressions_path)
    kept, notes = apply_suppressions(analysis.findings, suppressions)
    report = Report("lockcheck")
    report.extend("lockcheck", kept + notes)
    return report, analysis
