"""Mutation self-test: prove the race detector actually detects.

A verifier that always says "race-free" is worthless.  This module
injects a known defect — drop one dependency edge whose endpoints
conflict on a block and that no alternate path covers — and asserts
the detector reports *exactly* that pair.  The CLI's ``--self-test``
runs it (plus a deliberately misdeclared footprint through the
dynamic sanitizer) and fails when the defect goes unreported.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.graph import TaskGraph
from repro.verify.reach import ancestor_masks, has_path

__all__ = ["conflict_edges", "essential_conflict_edges", "drop_edge", "pick_droppable_edge"]


def conflict_edges(graph: TaskGraph) -> list[tuple[int, int]]:
    """Graph edges ``(u, v)`` whose endpoints conflict on some block.

    A conflict means the two tasks share a block with at least one of
    them writing it (RAW, WAR or WAW) — the edges the happens-before
    proof genuinely depends on, as opposed to ``extra_deps`` wiring.
    """
    out: list[tuple[int, int]] = []
    for v in range(len(graph.tasks)):
        tv = graph.tasks[v]
        for u in graph.preds[v]:
            tu = graph.tasks[u]
            if (
                (tu.writes & tv.writes)
                or (tu.writes & tv.reads)
                or (tu.reads & tv.writes)
            ):
                out.append((u, v))
    return out


def essential_conflict_edges(graph: TaskGraph) -> list[tuple[int, int]]:
    """Conflict edges not covered by any alternate happens-before path.

    Dropping such an edge *must* leave its endpoints unordered, so the
    race detector must flag the pair — these are the valid targets for
    the edge-drop mutation.  (Transitively redundant edges are skipped:
    removing one changes nothing observable.)
    """
    anc = ancestor_masks(graph)
    out: list[tuple[int, int]] = []
    for u, v in conflict_edges(graph):
        covered = any(
            w != u and has_path(anc, u, w) for w in graph.preds[v]
        )
        if not covered:
            out.append((u, v))
    return out


def drop_edge(graph: TaskGraph, u: int, v: int) -> TaskGraph:
    """A copy of *graph* without the ``u -> v`` edge.

    Tasks (and their closures/metadata) are shared with the original;
    only the adjacency is rebuilt, so the mutant is cheap and the
    original stays intact.
    """
    if v not in graph.succs[u]:
        raise ValueError(f"graph {graph.name!r} has no edge {u} -> {v}")
    mutant = TaskGraph(f"{graph.name}~drop({u}->{v})")
    mutant.tasks = list(graph.tasks)
    mutant.succs = [[s for s in ss if not (t == u and s == v)] for t, ss in enumerate(graph.succs)]
    mutant.preds = [[p for p in ps if not (t == v and p == u)] for t, ps in enumerate(graph.preds)]
    return mutant


def pick_droppable_edge(graph: TaskGraph, seed: int = 0) -> tuple[int, int]:
    """A seeded-random essential conflict edge of *graph*.

    Raises ``ValueError`` when the graph has none (then every conflict
    edge is transitively covered and the mutation test is vacuous).
    """
    edges = essential_conflict_edges(graph)
    if not edges:
        raise ValueError(f"graph {graph.name!r} has no essential conflict edge to drop")
    rng = np.random.default_rng(seed)
    return edges[int(rng.integers(len(edges)))]
