"""Dynamic verification: footprint sanitizer and schedule fuzzer.

The static passes trust the declared footprints.  This module closes
the loop on numeric graphs:

* :func:`sanitize_footprints` executes a graph sequentially and
  shadow-compares the matrix before/after every task: any element a
  closure mutated outside its declared write blocks is a ``footprint``
  error (the declaration the race detector relied on was a lie).
* :func:`fuzz_schedules` re-executes freshly built graphs under N
  seeded random topological orders and asserts the results are
  *bitwise* identical to the program-order run — the determinism the
  happens-before proof promises.

Both passes only see the shared matrix: workspace-only writes
(``("cand", K, s)`` candidate buffers, pivot sequences, Q factors)
leave no matrix trace and are vacuously consistent here; the race
detector covers their ordering statically.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.runtime.graph import TaskGraph
from repro.verify.findings import Finding

__all__ = ["sanitize_footprints", "fuzz_schedules", "random_topological_order"]


def _is_matrix_block(key: object) -> bool:
    """True for ``(i, j)`` block-index keys (workspace keys are tagged tuples)."""
    return (
        isinstance(key, tuple)
        and len(key) == 2
        and all(isinstance(x, (int, np.integer)) for x in key)
    )


def _changed_blocks(before: np.ndarray, after: np.ndarray, b: int) -> set[tuple[int, int]]:
    """Block indices of elements that differ (NaN == NaN counts as equal)."""
    diff = before != after
    both_nan = np.isnan(before) & np.isnan(after)
    diff &= ~both_nan
    rows, cols = np.nonzero(diff)
    return {(int(i) // b, int(j) // b) for i, j in zip(rows, cols, strict=True)}


def sanitize_footprints(graph: TaskGraph, A: np.ndarray, b: int) -> list[Finding]:
    """Execute ``graph`` sequentially, shadow-checking every write.

    ``A`` must be the matrix the graph's closures were built over and
    ``b`` the block size of its layout.  Runs tasks in topological
    order (so the factorization itself is still correct afterwards)
    and reports a ``footprint`` error for every task that mutated a
    matrix block outside its declared write set.
    """
    findings: list[Finding] = []
    for tid in graph.topological_order():
        task = graph.tasks[tid]
        if task.fn is None:
            continue
        before = A.copy()
        task.fn()
        touched = _changed_blocks(before, A, b)
        declared = {k for k in task.writes if _is_matrix_block(k)}
        rogue = sorted(touched - declared)
        if rogue:
            shown = ", ".join(repr(x) for x in rogue[:4])
            more = f" (+{len(rogue) - 4} more)" if len(rogue) > 4 else ""
            findings.append(
                Finding(
                    rule="footprint",
                    severity="error",
                    graph=graph.name,
                    message=(
                        f"task #{tid} {task.name!r} mutated block(s) {shown}{more} "
                        f"outside its declared write set "
                        f"{sorted(declared, key=repr)!r} — the static race proof "
                        "is unsound for this graph; fix the builder's "
                        "reads/writes declaration"
                    ),
                    tasks=(tid,),
                    block=rogue[0],
                )
            )
    return findings


def random_topological_order(graph: TaskGraph, rng: np.random.Generator) -> list[int]:
    """A uniformly seeded random linear extension of the DAG (Kahn + choice)."""
    indeg = graph.indegrees()
    ready = sorted(t for t, d in enumerate(indeg) if d == 0)
    order: list[int] = []
    while ready:
        t = ready.pop(int(rng.integers(len(ready))))
        order.append(t)
        for s in graph.succs[t]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != len(graph.tasks):
        raise ValueError(f"graph {graph.name!r} has a cycle; cannot fuzz schedules")
    return order


def _run_order(graph: TaskGraph, order: Sequence[int]) -> None:
    done: set[int] = set()
    for t in order:
        if any(p not in done for p in graph.preds[t]):
            raise ValueError(f"order violates dependencies at task {t}")
        fn = graph.tasks[t].fn
        if fn is not None:
            fn()
        done.add(t)


def fuzz_schedules(
    build: Callable[[], tuple[TaskGraph, Callable[[], list[np.ndarray]]]],
    runs: int = 5,
    seed: int = 0,
) -> list[Finding]:
    """Assert results are bitwise schedule-independent.

    ``build`` constructs a *fresh* numeric graph and returns
    ``(graph, collect)`` where ``collect()`` yields the output arrays
    to compare (factors, pivot sequences, ...).  The first build runs
    in program (topological) order to produce the reference; each of
    the ``runs`` subsequent builds runs under a different seeded
    random linear extension and must reproduce the reference bit for
    bit.  Any divergence is a ``schedule-dependence`` error — evidence
    of a race the static detector's inputs hid, or of a
    non-associative reduction leaking schedule order into the result.
    """
    graph, collect = build()
    _run_order(graph, graph.topological_order())
    reference = [np.array(a, copy=True) for a in collect()]
    name = graph.name

    findings: list[Finding] = []
    for run in range(runs):
        rng = np.random.default_rng(seed + run)
        graph, collect = build()
        _run_order(graph, random_topological_order(graph, rng))
        outputs = list(collect())
        if len(outputs) != len(reference):
            findings.append(
                Finding(
                    rule="schedule-dependence",
                    severity="error",
                    graph=name,
                    message=(
                        f"fuzz run {run} (seed {seed + run}) produced "
                        f"{len(outputs)} output arrays, reference has {len(reference)}"
                    ),
                )
            )
            continue
        for idx, (got, ref) in enumerate(zip(outputs, reference, strict=True)):
            if got.shape != ref.shape or got.tobytes() != ref.tobytes():
                where = "shape mismatch" if got.shape != ref.shape else "bitwise mismatch"
                findings.append(
                    Finding(
                        rule="schedule-dependence",
                        severity="error",
                        graph=name,
                        message=(
                            f"fuzz run {run} (seed {seed + run}): output array {idx} "
                            f"{where} vs program-order reference — the result depends "
                            "on the schedule; a conflicting access pair is unordered"
                        ),
                    )
                )
    return findings
