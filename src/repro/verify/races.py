"""Static race detector: prove every conflicting access pair ordered.

The paper's correctness argument is that the dependency graph built
from block read/write sets orders every pair of conflicting accesses
(RAW, WAR, WAW).  The builders *construct* those edges; this pass
*proves* the property for a built graph: for every block, every pair
of tasks where at least one writes must be connected by a
happens-before path in the DAG.  When the proof fails the finding
carries the counterexample — the task pair, the block, and the edge
that would restore the ordering.

Footprints come from ``Task.meta["reads"]`` / ``Task.meta["writes"]``
(recorded by :class:`~repro.runtime.graph.BlockTracker` and the
builders).  A task carrying a numeric closure but no footprint cannot
be proved race-free against anyone and is reported as ``opaque-task``.
"""

from __future__ import annotations

from repro.runtime.graph import TaskGraph
from repro.verify.findings import Finding
from repro.verify.reach import ancestor_masks, has_path

__all__ = ["check_races", "block_accesses"]


def block_accesses(graph: TaskGraph) -> dict[object, tuple[list[int], list[int]]]:
    """Per-block ``(readers, writers)`` task-id lists, from declared footprints."""
    acc: dict[object, tuple[list[int], list[int]]] = {}
    for task in graph.tasks:
        for blk in task.reads:
            acc.setdefault(blk, ([], []))[0].append(task.tid)
        for blk in task.writes:
            acc.setdefault(blk, ([], []))[1].append(task.tid)
    return acc


def _conflict_kind(a_writes: bool, b_writes: bool) -> str:
    if a_writes and b_writes:
        return "WAW"
    return "RAW/WAR"


def check_races(graph: TaskGraph) -> list[Finding]:
    """Prove the graph orders every conflicting block access.

    Returns one ``race`` error per unordered task pair (aggregating
    all blocks the pair conflicts on), plus ``opaque-task`` warnings
    for numeric tasks with no declared footprint.
    """
    findings: list[Finding] = []
    for task in graph.tasks:
        if task.fn is not None and not task.has_footprint:
            findings.append(
                Finding(
                    rule="opaque-task",
                    severity="warning",
                    graph=graph.name,
                    message=(
                        f"task #{task.tid} {task.name!r} carries a numeric closure but no "
                        "declared read/write footprint; the race detector cannot order it "
                        "— add it through BlockTracker.add_task or set meta reads/writes"
                    ),
                    tasks=(task.tid,),
                )
            )
    anc = ancestor_masks(graph)

    # pair -> (blocks, kinds): aggregate so one missing edge yields one
    # counterexample even when the pair conflicts on many blocks.
    unordered: dict[tuple[int, int], tuple[list[object], set[str]]] = {}

    def _check_pair(a: int, b: int, blk: object, kind: str) -> None:
        if a == b or has_path(anc, a, b) or has_path(anc, b, a):
            return
        key = (min(a, b), max(a, b))
        blocks, kinds = unordered.setdefault(key, ([], set()))
        blocks.append(blk)
        kinds.add(kind)

    for blk in sorted(block_accesses(graph).items(), key=lambda kv: repr(kv[0])):
        block, (readers, writers) = blk
        for i, w1 in enumerate(writers):
            for w2 in writers[i + 1 :]:
                _check_pair(w1, w2, block, _conflict_kind(True, True))
            for r in readers:
                _check_pair(w1, r, block, _conflict_kind(True, False))

    for (a, b), (blocks, kinds) in sorted(unordered.items()):
        ta, tb = graph.tasks[a], graph.tasks[b]
        shown = ", ".join(repr(x) for x in blocks[:3])
        more = f" (+{len(blocks) - 3} more)" if len(blocks) > 3 else ""
        findings.append(
            Finding(
                rule="race",
                severity="error",
                graph=graph.name,
                message=(
                    f"{'/'.join(sorted(kinds))} conflict between #{a} {ta.name!r} and "
                    f"#{b} {tb.name!r} on block(s) {shown}{more} with no happens-before "
                    f"path either way — missing edge {a} -> {b} (program order)"
                ),
                tasks=(a, b),
                block=blocks[0],
            )
        )
    return findings
