"""Threaded-vs-process backend equivalence pass.

The :class:`~repro.runtime.process.ProcessExecutor` runs the same task
graph as the :class:`~repro.runtime.threaded.ThreadedExecutor`, but the
kernels execute in worker processes against a shared-memory arena and
the results flow back through ``op_sync`` mirrors instead of closure
side effects.  Because every task is a deterministic function of its
DAG-ordered inputs, scheduling and process placement must not change a
single bit of the output: this pass factors the same matrix through
both backends and demands *bitwise* identical factors — CALU's packed
LU and pivot sequence, CAQR's ``R``, packed trailing matrix and every
implicit-Q ``V``/``T``/``Vb`` buffer in the panel stores.

Any difference means the shared-memory wiring diverged from the
closure path (a descriptor slicing bug, a missed sync, a buffer
aliasing error) and is reported as an ``error``-severity
``backend-mismatch`` finding.
"""

from __future__ import annotations

import numpy as np

from repro.core.trees import TreeKind
from repro.verify.findings import Finding

__all__ = ["check_backend_equivalence"]


def _compare(name: str, label: str, a: np.ndarray, b: np.ndarray) -> list[Finding]:
    if np.array_equal(np.asarray(a), np.asarray(b)):
        return []
    a, b = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if a.shape != b.shape:
        detail = f"shapes differ: threaded {a.shape} vs process {b.shape}"
    else:
        diff = np.abs(a - b)
        finite = diff[np.isfinite(diff)]
        worst = float(finite.max()) if finite.size else float("nan")
        detail = f"{int(np.count_nonzero(diff))} differing entries, max |delta| = {worst:.3g}"
    return [
        Finding(
            rule="backend-mismatch",
            severity="error",
            graph=name,
            message=(
                f"{label} differs between ThreadedExecutor and ProcessExecutor "
                f"({detail}); the shared-memory op descriptors must reproduce "
                "the closure path bitwise"
            ),
        )
    ]


def check_backend_equivalence(
    name: str,
    kind: str,
    m: int,
    n: int,
    b: int,
    tr: int,
    tree: TreeKind,
    seed: int = 0,
    fuse: int | None = None,
) -> list[Finding]:
    """Factor one matrix through both backends; demand bitwise equality.

    *kind* is ``"lu"`` (CALU: compares packed LU + pivots) or ``"qr"``
    (CAQR: compares ``R``, the packed matrix and every panel-store
    array).  *fuse* forwards a task-fusion granularity to both drivers,
    so fused super-task dispatch is held to the same bitwise bar.
    Returns ``error`` findings for each differing output; an empty list
    means the backends agree bit-for-bit.
    """
    from repro.core.calu import calu
    from repro.core.caqr import caqr

    A = np.random.default_rng(seed).standard_normal((m, n))
    findings: list[Finding] = []
    if kind == "lu":
        ref = calu(A.copy(), b=b, tr=tr, tree=tree, executor="threaded", fuse=fuse)
        alt = calu(A.copy(), b=b, tr=tr, tree=tree, executor="process", fuse=fuse)
        findings += _compare(name, "packed LU", ref.lu, alt.lu)
        findings += _compare(name, "pivot sequence", ref.piv, alt.piv)
    elif kind == "qr":
        ref = caqr(A.copy(), b=b, tr=tr, tree=tree, executor="threaded", fuse=fuse)
        alt = caqr(A.copy(), b=b, tr=tr, tree=tree, executor="process", fuse=fuse)
        findings += _compare(name, "R factor", ref.R, alt.R)
        findings += _compare(name, "packed matrix", ref.packed, alt.packed)
        for k, (s_ref, s_alt) in enumerate(zip(ref.panels, alt.panels, strict=True)):
            a_ref, a_alt = s_ref.to_arrays(), s_alt.to_arrays()
            if set(a_ref) != set(a_alt):
                findings.append(
                    Finding(
                        rule="backend-mismatch",
                        severity="error",
                        graph=name,
                        message=(
                            f"panel {k} Q-store keys differ between backends: "
                            f"{sorted(set(a_ref) ^ set(a_alt))}"
                        ),
                    )
                )
                continue
            for key in sorted(a_ref):
                findings += _compare(name, f"panel {k} Q-store {key!r}", a_ref[key], a_alt[key])
    else:
        raise ValueError(f"unknown factorization kind {kind!r}")
    return findings
