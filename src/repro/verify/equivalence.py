"""Stream-vs-eager equivalence: streamed programs must match eager graphs.

The builders in :mod:`repro.core` and :mod:`repro.baselines` emit
:class:`~repro.runtime.program.GraphProgram` objects whose windows are
materialized incrementally — during execution, interleaved with task
completions under the look-ahead window.  The eager interface
(``build_*_graph``) is the same program materialized in one shot.  This
pass proves the two are indistinguishable:

* **structural** — two independent builds, one grown window-by-window
  (through a real streamed execution when the graph is numeric), must
  agree task-for-task: names, kinds, costs, priorities, iterations,
  declared footprints and predecessor lists;
* **behavioral** — for numeric graphs, the streamed run's factors must
  reproduce a sequential eager run bitwise.

Any divergence is a builder bug: an ``emit`` callback that depends on
completion timing, cross-window closure state restored in the wrong
order, or an epilogue computed over a partially emitted graph.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.runtime.graph import Task, TaskGraph
from repro.runtime.program import GraphProgram
from repro.verify.findings import Finding

__all__ = ["check_stream_equivalence", "compare_graphs", "compare_results"]

_RULE = "stream-eager-mismatch"


def _task_diffs(ts: Task, te: Task) -> list[str]:
    """Human-readable field divergences between one streamed/eager task pair."""
    diffs: list[str] = []
    if ts.name != te.name:
        diffs.append(f"name {ts.name!r} != {te.name!r}")
    if ts.kind != te.kind:
        diffs.append(f"kind {ts.kind.value} != {te.kind.value}")
    if ts.cost != te.cost:
        diffs.append(f"cost {ts.cost} != {te.cost}")
    if ts.priority != te.priority:
        diffs.append(f"priority {ts.priority:g} != {te.priority:g}")
    if ts.iteration != te.iteration:
        diffs.append(f"iteration {ts.iteration} != {te.iteration}")
    if ts.idempotent != te.idempotent:
        diffs.append(f"idempotent {ts.idempotent} != {te.idempotent}")
    if ts.reads != te.reads:
        diffs.append("declared read footprints differ")
    if ts.writes != te.writes:
        diffs.append("declared write footprints differ")
    if (ts.fn is None) != (te.fn is None):
        diffs.append(f"numeric closure {'missing' if ts.fn is None else 'unexpected'} in streamed build")
    return diffs


def compare_graphs(
    streamed: TaskGraph,
    eager: TaskGraph,
    *,
    graph: str | None = None,
    limit: int = 10,
) -> list[Finding]:
    """Compare a streamed-materialized graph against an eager build.

    Emits one ``error`` finding per divergent task (capped at *limit*)
    plus one for any task-count or edge mismatch.  An empty list means
    the two builds are identical up to the numeric closures' identity.
    """
    name = graph or eager.name
    findings: list[Finding] = []
    if streamed.name != eager.name:
        findings.append(
            Finding(
                _RULE,
                "error",
                name,
                f"graph names differ: streamed {streamed.name!r} vs eager {eager.name!r}; "
                "the program factory and the eager builder disagree on identity",
            )
        )
    if len(streamed.tasks) != len(eager.tasks):
        findings.append(
            Finding(
                _RULE,
                "error",
                name,
                f"streamed build emitted {len(streamed.tasks)} tasks but the eager build "
                f"has {len(eager.tasks)}; some window emitted a different task set",
            )
        )
        return findings
    reported = 0
    for ts, te in zip(streamed.tasks, eager.tasks, strict=True):
        diffs = _task_diffs(ts, te)
        if streamed.preds[ts.tid] != eager.preds[te.tid]:
            diffs.append(
                f"preds {streamed.preds[ts.tid]} != {eager.preds[te.tid]}"
            )
        if diffs:
            if reported < limit:
                findings.append(
                    Finding(
                        _RULE,
                        "error",
                        name,
                        f"task #{ts.tid} diverges between streamed and eager builds: "
                        + "; ".join(diffs),
                        tasks=(ts.tid,),
                    )
                )
            reported += 1
    if reported > limit:
        findings.append(
            Finding(
                _RULE,
                "error",
                name,
                f"{reported - limit} further divergent tasks suppressed",
            )
        )
    return findings


def compare_results(
    streamed: list[np.ndarray],
    eager: list[np.ndarray],
    *,
    graph: str,
) -> list[Finding]:
    """Bitwise-compare the numeric outputs of a streamed and an eager run."""
    findings: list[Finding] = []
    if len(streamed) != len(eager):
        return [
            Finding(
                _RULE,
                "error",
                graph,
                f"streamed run produced {len(streamed)} output arrays, eager run "
                f"{len(eager)}; the collectors disagree",
            )
        ]
    for idx, (s, e) in enumerate(zip(streamed, eager, strict=True)):
        if s.shape != e.shape or not np.array_equal(s, e):
            findings.append(
                Finding(
                    _RULE,
                    "error",
                    graph,
                    f"output array {idx} differs bitwise between the streamed run "
                    f"(shape {s.shape}) and the eager run (shape {e.shape}); "
                    "streaming must not change the computed factors",
                )
            )
    return findings


def check_stream_equivalence(
    name: str,
    build_stream: Callable[[], tuple[GraphProgram, Callable | None]],
    build_eager: Callable[[], tuple[TaskGraph, Callable | None]],
    *,
    execute: bool = True,
    n_workers: int = 2,
) -> list[Finding]:
    """Prove one builder's streamed program matches its eager graph.

    *build_stream* returns ``(program, collect)`` and *build_eager*
    returns ``(graph, collect)`` — independent fresh builds (same seed)
    whose ``collect`` callables (``None`` for symbolic graphs) gather
    the numeric outputs to compare.  When both sides are numeric and
    *execute* is true, the program is run **streamed** through a
    threaded engine-backed executor (windows emitted as predecessors
    complete) against a sequential eager run; otherwise the program is
    materialized in one shot and only structure is compared.
    """
    program, collect_s = build_stream()
    eager, collect_e = build_eager()
    numeric = execute and collect_s is not None and collect_e is not None
    if numeric:
        from repro.runtime.threaded import ThreadedExecutor

        ThreadedExecutor(n_workers).run(program)
        streamed_graph = program.graph
    else:
        streamed_graph = program.materialize()
    findings = compare_graphs(streamed_graph, eager, graph=name)
    if numeric:
        eager.run_sequential()
        findings.extend(compare_results(collect_s(), collect_e(), graph=name))
    return findings
