"""DAG linter: structural and metadata rules for task graphs.

Rules (rule id → severity):

* ``cycle`` (error) — the graph is not a DAG; the finding carries a
  minimal cycle witness.
* ``cost-flops`` (error) — a task's flop count contradicts its kernel
  dimensions (checked against the closed forms in
  :mod:`repro.analysis.flops`; tree-merge/apply kernels may be integer
  multiples of the unit formula).
* ``cost-words`` (warning) — negative/non-finite word counts, or a
  flop-bearing task with no memory traffic.
* ``isolated-task`` (warning) — a task with neither predecessors nor
  successors in a multi-task graph (unreachable/dead work).
* ``priority-inversion`` (warning) — a look-ahead-window update (a U/S
  task of block column ``K+1`` emitted at iteration ``K``) outranked
  by work of iteration ``K+2`` or later; breaks the paper's schedule.
* ``redundant-edge`` (info) — an edge implied by a longer path.  The
  block tracker's conservative WAW policy (writer depends on the last
  writer *and* the readers since) produces these by design, so they
  are notes, not defects.
"""

from __future__ import annotations

import math

from repro.analysis.flops import (
    gemm_flops,
    larfb_flops,
    lu_flops,
    lu_panel_flops,
    qr_flops,
    ssssm_flops,
    tpmqrt_flops,
    tpqrt_ts_flops,
    tpqrt_tt_flops,
    trsm_left_flops,
    trsm_right_flops,
    tstrf_flops,
)
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task
from repro.verify.findings import Finding
from repro.verify.reach import ancestor_masks, find_cycle

__all__ = ["lint_graph", "expected_flops"]

# Unit flop formulas per kernel, as the builders compute them from the
# Cost dimensions (m, n, k).  None marks zero-flop bookkeeping kernels.
_UNIT_FLOPS = {
    "gemm": lambda m, n, k: gemm_flops(m, n, k),
    "trsm_runn": lambda m, n, k: trsm_right_flops(m, k),
    "trsm_llnu": lambda m, n, k: trsm_left_flops(k, n),
    "gessm": lambda m, n, k: trsm_left_flops(k, n),
    "getf2": lambda m, n, k: lu_flops(m, n),
    "rgetf2": lambda m, n, k: lu_flops(m, n),
    "getrf_tile": lambda m, n, k: lu_flops(m, n),
    "getrf_panel": lambda m, n, k: lu_flops(m, n),
    "geqrf_panel": lambda m, n, k: qr_flops(m, n),
    "gepp_merge": lambda m, n, k: lu_panel_flops(m, min(m, n)),
    "getf2_nopiv": lambda m, n, k: lu_panel_flops(m, min(m, n)),
    "geqr2": lambda m, n, k: qr_flops(m, n),
    "geqr3": lambda m, n, k: qr_flops(m, n),
    "geqrt_tile": lambda m, n, k: qr_flops(m, n),
    "larfb": lambda m, n, k: larfb_flops(m, n, k),
    "tpqrt_ts": lambda m, n, k: tpqrt_ts_flops(m, n),
    "tpqrt_tt": lambda m, n, k: tpqrt_tt_flops(n),
    "tpmqrt": lambda m, n, k: tpmqrt_flops(m, n, k),
    "tsmqr_tile": lambda m, n, k: tpmqrt_flops(m, n, k),
    "tstrf": lambda m, n, k: tstrf_flops(m, n),
    "ssssm": lambda m, n, k: ssssm_flops(m, n, k),
    "laswp": None,
}

# Kernels whose tasks legitimately batch several unit operations (flat
# trees merge Tr-1 pairs in one task), so flops may be any positive
# integer multiple of the unit formula.
_MULTIPLE_OK = {"tpqrt_tt", "tpmqrt", "tsmqr_tile"}

_REL_TOL = 1e-6


def expected_flops(task: Task) -> float | None:
    """Unit flop count implied by the task's kernel and dimensions.

    None when the kernel has no closed form registered (unknown
    kernels are not linted) or is a zero-flop bookkeeping kernel.
    """
    formula = _UNIT_FLOPS.get(task.cost.kernel, "missing")
    if formula == "missing":
        return None
    if formula is None:
        return 0.0
    return float(formula(task.cost.m, task.cost.n, task.cost.k))


def _check_cost(graph: TaskGraph, task: Task) -> list[Finding]:
    out: list[Finding] = []
    c = task.cost
    if not math.isfinite(c.flops) or c.flops < 0:
        out.append(
            Finding(
                rule="cost-flops",
                severity="error",
                graph=graph.name,
                message=f"task #{task.tid} {task.name!r}: invalid flop count {c.flops!r}",
                tasks=(task.tid,),
            )
        )
        return out
    if not math.isfinite(c.words) or c.words < 0:
        out.append(
            Finding(
                rule="cost-words",
                severity="warning",
                graph=graph.name,
                message=f"task #{task.tid} {task.name!r}: invalid word count {c.words!r}",
                tasks=(task.tid,),
            )
        )
    elif c.flops > 0 and c.words <= 0:
        out.append(
            Finding(
                rule="cost-words",
                severity="warning",
                graph=graph.name,
                message=(
                    f"task #{task.tid} {task.name!r} ({c.kernel}) performs {c.flops:g} "
                    "flops but declares no memory traffic"
                ),
                tasks=(task.tid,),
            )
        )
    unit = expected_flops(task)
    if unit is None:
        return out
    if unit == 0.0:
        ok = c.flops == 0.0
        detail = "expected 0 (bookkeeping kernel)"
    else:
        ratio = c.flops / unit
        if task.cost.kernel in _MULTIPLE_OK:
            nearest = max(1.0, round(ratio))
            ok = abs(ratio - nearest) <= _REL_TOL * nearest
            detail = f"expected an integer multiple of {unit:g}, got ratio {ratio:g}"
        else:
            ok = abs(ratio - 1.0) <= _REL_TOL
            detail = f"expected {unit:g} from dims (m={c.m}, n={c.n}, k={c.k}), got {c.flops:g}"
    if not ok:
        out.append(
            Finding(
                rule="cost-flops",
                severity="error",
                graph=graph.name,
                message=(
                    f"task #{task.tid} {task.name!r}: flop count inconsistent with "
                    f"kernel {c.kernel!r} dims — {detail}"
                ),
                tasks=(task.tid,),
            )
        )
    return out


def _check_priorities(graph: TaskGraph) -> list[Finding]:
    """Look-ahead-1 inversions: a window update outranked by K+2 work.

    The paper's schedule requires the updates of block column ``K+1``
    (emitted at iteration ``K``, tagged ``meta["col"] == K+1``) to run
    before any work of panel ``K+2`` becomes preferable.  Dependencies
    always dominate, so the check is on static priorities: the window
    task must outrank every task of iteration ``>= K+2``.
    """
    out: list[Finding] = []
    if not graph.tasks:
        return out
    max_iter = max(t.iteration for t in graph.tasks)
    # Highest priority task per iteration, then suffix maxima.
    best: dict[int, Task] = {}
    for t in graph.tasks:
        cur = best.get(t.iteration)
        if cur is None or t.priority > cur.priority:
            best[t.iteration] = t
    suffix: list[Task | None] = [None] * (max_iter + 2)
    run: Task | None = None
    for it in range(max_iter, -1, -1):
        cand = best.get(it)
        if run is None or (cand is not None and cand.priority > run.priority):
            run = cand if run is None or cand.priority > run.priority else run
        suffix[it] = run
    for t in graph.tasks:
        col = t.meta.get("col")
        if t.kind.value not in ("U", "S") or col != t.iteration + 1:
            continue
        later = suffix[t.iteration + 2] if t.iteration + 2 <= max_iter else None
        if later is not None and later.priority >= t.priority:
            out.append(
                Finding(
                    rule="priority-inversion",
                    severity="warning",
                    graph=graph.name,
                    message=(
                        f"look-ahead window task #{t.tid} {t.name!r} (iteration "
                        f"{t.iteration}, column {col}, priority {t.priority:g}) is "
                        f"outranked by #{later.tid} {later.name!r} (iteration "
                        f"{later.iteration}, priority {later.priority:g}); panel "
                        f"{t.iteration + 2}+ work would run first"
                    ),
                    tasks=(t.tid, later.tid),
                )
            )
    return out


def lint_graph(graph: TaskGraph, *, redundant_edges: bool = True) -> list[Finding]:
    """Run all lint rules; returns findings (possibly empty)."""
    findings: list[Finding] = []

    cycle = find_cycle(graph)
    if cycle is not None:
        names = " -> ".join(f"#{t} {graph.tasks[t].name!r}" for t in cycle)
        findings.append(
            Finding(
                rule="cycle",
                severity="error",
                graph=graph.name,
                message=f"graph contains a cycle: {names} -> #{cycle[0]}",
                tasks=tuple(cycle),
            )
        )
        return findings  # reachability-based rules need a DAG

    for task in graph.tasks:
        findings.extend(_check_cost(graph, task))

    if len(graph.tasks) > 1:
        for task in graph.tasks:
            if not graph.preds[task.tid] and not graph.succs[task.tid]:
                findings.append(
                    Finding(
                        rule="isolated-task",
                        severity="warning",
                        graph=graph.name,
                        message=(
                            f"task #{task.tid} {task.name!r} has no predecessors and no "
                            "successors — unreachable/dead work in a connected algorithm"
                        ),
                        tasks=(task.tid,),
                    )
                )

    findings.extend(_check_priorities(graph))

    if redundant_edges:
        anc = ancestor_masks(graph)
        for v in range(len(graph.tasks)):
            preds = graph.preds[v]
            if len(preds) < 2:
                continue
            for u in preds:
                if any(w != u and ((anc[w] >> u) & 1) for w in preds):
                    findings.append(
                        Finding(
                            rule="redundant-edge",
                            severity="info",
                            graph=graph.name,
                            message=(
                                f"edge {u} -> {v} is implied by a longer path "
                                f"(transitively redundant)"
                            ),
                            tasks=(u, v),
                        )
                    )
    return findings
