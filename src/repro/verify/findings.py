"""Finding and report types shared by all verification passes.

A :class:`Finding` is one defect (or note) a pass produced about a
task graph; a :class:`Report` aggregates the findings of every pass
that ran over one graph.  Severities:

``error``
    The graph is wrong: an unordered conflicting access (race), a
    cycle, a closure writing outside its declared footprint, a
    schedule-dependent result, or cost metadata that contradicts the
    kernel dimensions.
``warning``
    Almost certainly a builder bug even if execution may survive it:
    isolated tasks, numeric closures with no declared footprint,
    look-ahead priority inversions, missing word counts.
``info``
    Harmless observations, e.g. transitively redundant edges (the
    block tracker's conservative WAW edges produce these by design).

``error`` and ``warning`` findings gate (CLI exits nonzero); ``info``
notes never do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Report", "SEVERITIES"]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One defect or note about a task graph.

    ``tasks`` are the task ids involved (counterexample pair for a
    race, cycle members for a cycle, the single offender otherwise);
    ``block`` is the conflicting block key when one exists.  ``message``
    is a human-actionable description including the suggested fix.
    """

    rule: str
    severity: str
    graph: str
    message: str
    tasks: tuple[int, ...] = ()
    block: object = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        loc = f" tasks={list(self.tasks)}" if self.tasks else ""
        blk = f" block={self.block!r}" if self.block is not None else ""
        return f"[{self.severity}] {self.rule}:{loc}{blk} {self.message}"


@dataclass
class Report:
    """All findings of the passes that ran over one graph."""

    graph: str
    findings: list[Finding] = field(default_factory=list)
    passes: list[str] = field(default_factory=list)

    def extend(self, pass_name: str, findings: list[Finding]) -> None:
        if pass_name not in self.passes:
            self.passes.append(pass_name)
        self.findings.extend(findings)

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity("error")

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity("warning")

    @property
    def notes(self) -> list[Finding]:
        return self.by_severity("info")

    @property
    def gating(self) -> list[Finding]:
        """Findings that fail the gate (errors + warnings)."""
        return [f for f in self.findings if f.severity in ("error", "warning")]

    @property
    def ok(self) -> bool:
        return not self.gating

    def summary(self) -> str:
        e, w, i = len(self.errors), len(self.warnings), len(self.notes)
        status = "ok" if self.ok else "FAIL"
        return (
            f"{self.graph}: {status} ({', '.join(self.passes)}; "
            f"{e} errors, {w} warnings, {i} notes)"
        )
