"""Reachability over task graphs via ancestor bitmasks.

One arbitrary-precision integer per task, bit ``p`` set when task
``p`` is a (transitive) predecessor.  Building all masks is a single
topological sweep with ``O(V * E / wordsize)`` big-int unions, after
which every happens-before query is one shift-and-test — fast enough
to check all conflicting pairs of the builder graphs exactly instead
of sampling.
"""

from __future__ import annotations

from repro.runtime.graph import TaskGraph

__all__ = ["ancestor_masks", "has_path", "find_cycle"]


def ancestor_masks(graph: TaskGraph) -> list[int]:
    """Bitmask of transitive predecessors for every task.

    Raises ``ValueError`` if the graph has a cycle (use
    :func:`find_cycle` for a witness first).
    """
    anc = [0] * len(graph.tasks)
    for t in graph.topological_order():
        a = 0
        for p in graph.preds[t]:
            a |= anc[p] | (1 << p)
        anc[t] = a
    return anc


def has_path(anc: list[int], u: int, v: int) -> bool:
    """True when a happens-before path ``u -> ... -> v`` exists."""
    return bool((anc[v] >> u) & 1)


def find_cycle(graph: TaskGraph) -> list[int] | None:
    """A shortest cycle of the graph as a task-id list, or None.

    Kahn's algorithm peels away the acyclic part; every surviving node
    lies on or leads into a cycle.  A BFS from each survivor (over
    successors restricted to survivors) back to itself then yields the
    minimal witness — the smallest set of tasks one must inspect to
    see the contradiction.
    """
    from collections import deque

    indeg = graph.indegrees()
    queue = deque(t for t, d in enumerate(indeg) if d == 0)
    seen = 0
    while queue:
        t = queue.popleft()
        seen += 1
        for s in graph.succs[t]:
            indeg[s] -= 1
            if indeg[s] == 0:
                queue.append(s)
    if seen == len(graph.tasks):
        return None
    alive = {t for t, d in enumerate(indeg) if d > 0}
    best: list[int] | None = None
    for start in sorted(alive):
        # BFS shortest path start -> ... -> start within `alive`.
        prev: dict[int, int] = {}
        q = deque([start])
        found = False
        while q and not found:
            t = q.popleft()
            for s in graph.succs[t]:
                if s not in alive:
                    continue
                if s == start:
                    prev[start] = t
                    found = True
                    break
                if s not in prev:
                    prev[s] = t
                    q.append(s)
        if not found:
            continue
        cycle = [start]
        node = prev[start]
        while node != start:
            cycle.append(node)
            node = prev[node]
        cycle.reverse()
        if best is None or len(cycle) < len(best):
            best = cycle
    return best
