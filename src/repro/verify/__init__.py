"""Static and dynamic verification of the task-graph construction.

The paper's threading model is only sound if the dependency graph
orders every pair of conflicting block accesses.  This package proves
that property per graph instead of assuming it:

* :mod:`repro.verify.races` — static race detector over declared
  footprints (happens-before proof with counterexamples);
* :mod:`repro.verify.lint` — DAG linter (cycles, dead tasks, cost
  metadata vs kernel dims, look-ahead priority inversions,
  transitively redundant edges);
* :mod:`repro.verify.sanitize` — dynamic footprint sanitizer and
  random-schedule fuzzer for numeric graphs;
* :mod:`repro.verify.mutate` — edge-drop mutation used by the CLI
  self-test to prove the detector detects;
* :mod:`repro.verify.equivalence` — stream-vs-eager equivalence
  (streamed :class:`~repro.runtime.program.GraphProgram` builds must
  match the eager graphs structurally and bitwise in their factors).

Run everything with ``python -m repro.verify``.
"""

from repro.verify.equivalence import (
    check_stream_equivalence,
    compare_graphs,
    compare_results,
)
from repro.verify.findings import Finding, Report
from repro.verify.lint import lint_graph
from repro.verify.mutate import (
    conflict_edges,
    drop_edge,
    essential_conflict_edges,
    pick_droppable_edge,
)
from repro.verify.races import block_accesses, check_races
from repro.verify.reach import ancestor_masks, find_cycle, has_path
from repro.verify.sanitize import fuzz_schedules, random_topological_order, sanitize_footprints

__all__ = [
    "Finding",
    "Report",
    "check_stream_equivalence",
    "compare_graphs",
    "compare_results",
    "lint_graph",
    "check_races",
    "block_accesses",
    "ancestor_masks",
    "has_path",
    "find_cycle",
    "sanitize_footprints",
    "fuzz_schedules",
    "random_topological_order",
    "conflict_edges",
    "essential_conflict_edges",
    "drop_edge",
    "pick_droppable_edge",
]
