"""``python -m repro.verify`` — run all verification passes.

Default target matrix: CALU and CAQR graphs across binary and flat
reduction trees at two sizes each (numeric — static race proof, DAG
lint, dynamic footprint sanitizer, schedule fuzzer), two larger
symbolic CALU/CAQR graphs, and the four baseline graphs (static
passes only).  Every target also runs the stream-vs-eager equivalence
pass: the builder's :class:`~repro.runtime.program.GraphProgram` is
grown window-by-window (through a real streamed execution for numeric
graphs) and must match the eager build task-for-task — and bitwise in
its computed factors.  Exits nonzero when any graph has gating
findings (``error`` or ``warning``; ``info`` notes never gate).

``--self-test`` instead verifies the verifier: it drops a random
essential dependency edge from a CALU graph and asserts the race
detector reports exactly that task pair, then misdeclares a numeric
task's write footprint and asserts the sanitizer flags it.  Exits
nonzero when either injected defect goes *undetected*.
"""

from __future__ import annotations

import argparse
from typing import Callable

import numpy as np

from repro.baselines.lapack_lu import build_getrf_graph, getrf_program
from repro.baselines.lapack_qr import build_geqrf_graph, geqrf_program
from repro.baselines.tiled_lu import build_tiled_lu_graph, tiled_lu_program
from repro.baselines.tiled_qr import build_tiled_qr_graph, tiled_qr_program
from repro.core.calu import build_calu_graph, calu_program
from repro.core.caqr import build_caqr_graph, caqr_program
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.runtime.graph import TaskGraph
from repro.verify.backends import check_backend_equivalence
from repro.verify.equivalence import check_stream_equivalence
from repro.verify.findings import Report
from repro.verify.lint import lint_graph
from repro.verify.lockcheck import lock_self_test, run_lockcheck
from repro.verify.mutate import drop_edge, pick_droppable_edge
from repro.verify.races import check_races
from repro.verify.sanitize import fuzz_schedules, sanitize_footprints

__all__ = ["main", "verify_graph", "default_targets"]

_MATRIX_SEED = 20100419  # IPDPS 2010 — fixed so runs are reproducible


def _random_matrix(m: int, n: int, seed: int = _MATRIX_SEED) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


_Builder = Callable[[], "tuple[object, Callable[[], list[np.ndarray]] | None]"]


def _calu_builder(
    m: int, n: int, b: int, tr: int, tree: TreeKind, stream: bool = False
) -> _Builder:
    def build() -> tuple[object, Callable[[], list[np.ndarray]]]:
        A = _random_matrix(m, n)
        layout = BlockLayout(m, n, b)
        make = calu_program if stream else build_calu_graph
        built, workspaces = make(layout, tr, tree, A=A, guards=False)

        def collect() -> list[np.ndarray]:
            out = [A]
            for ws in workspaces:
                if ws.piv is not None:
                    out.append(np.asarray(ws.piv, dtype=np.int64))
            return out

        return built, collect

    return build


def _caqr_builder(
    m: int, n: int, b: int, tr: int, tree: TreeKind, stream: bool = False
) -> _Builder:
    def build() -> tuple[object, Callable[[], list[np.ndarray]]]:
        A = _random_matrix(m, n)
        layout = BlockLayout(m, n, b)
        make = caqr_program if stream else build_caqr_graph
        built, stores = make(layout, tr, tree, A=A, guards=False)

        def collect() -> list[np.ndarray]:
            out = [A]
            for store in stores:
                for slot in sorted(store.leaves):
                    out.append(store.leaves[slot].V)
                    out.append(store.leaves[slot].T)
                for mf in store.merges:
                    if mf is not None:
                        out.append(mf.Vb)
                        out.append(mf.T)
            return out

        return built, collect

    return build


def _fused_builder(inner: _Builder, max_ops: int = 8, materialize: bool = False) -> _Builder:
    """A builder emitting the fused rewrite of *inner*'s program.

    Fused targets put super-task dispatch through the same proofs as
    the pristine graphs: races, lint, footprint sanitizing, schedule
    fuzzing, fused-stream vs fused-eager equivalence.  *inner* must be
    a streaming builder: fusion is a per-window rewrite, so the eager
    twin (``materialize=True``) is the *same* fused program flattened —
    task-for-task identical, which is exactly what the stream-vs-eager
    pass demands.
    """

    def build():
        from repro.runtime.fuse import fuse_program
        from repro.runtime.program import as_program

        built, collect = inner()
        program = fuse_program(as_program(built), max_ops=max_ops)
        return (program.materialize() if materialize else program), collect

    return build


class Target:
    """One graph to verify: a fresh-builder plus dynamic-pass config.

    ``stream`` is the same builder returning a
    :class:`~repro.runtime.program.GraphProgram` instead of an eager
    graph — when present the stream-vs-eager equivalence pass runs.
    ``backend`` is a ``(kind, m, n, b, tr, tree)`` tuple — when present
    (and execution is allowed) the threaded-vs-process backend
    equivalence pass factors the target's matrix through both executor
    backends and demands bitwise-identical factors; ``fuse`` forwards a
    task-fusion granularity to that pass so batched descriptor dispatch
    is held to the same bar.
    """

    def __init__(
        self,
        name: str,
        build: _Builder,
        *,
        block: int | None = None,
        stream: _Builder | None = None,
        backend: tuple | None = None,
        fuse: int | None = None,
    ) -> None:
        self.name = name
        self.build = build
        self.block = block  # block size for the sanitizer; None = static only
        self.stream = stream
        self.backend = backend
        self.fuse = fuse

    @property
    def numeric(self) -> bool:
        return self.block is not None


def default_targets() -> list[Target]:
    targets: list[Target] = []
    for tree in (TreeKind.BINARY, TreeKind.FLAT):
        for m, n, b, tr in ((48, 48, 8, 4), (40, 24, 8, 3)):
            targets.append(
                Target(
                    f"calu-{tree.value}-{m}x{n}",
                    _calu_builder(m, n, b, tr, tree),
                    block=b,
                    stream=_calu_builder(m, n, b, tr, tree, stream=True),
                    backend=("lu", m, n, b, tr, tree),
                )
            )
            targets.append(
                Target(
                    f"caqr-{tree.value}-{m}x{n}",
                    _caqr_builder(m, n, b, tr, tree),
                    block=b,
                    stream=_caqr_builder(m, n, b, tr, tree, stream=True),
                    backend=("qr", m, n, b, tr, tree),
                )
            )
    # Fused rewrites: the full pass battery over super-task graphs, plus
    # backend equivalence with batched descriptor dispatch.
    targets.append(
        Target(
            "calu-binary-48x48-fused8",
            _fused_builder(
                _calu_builder(48, 48, 8, 4, TreeKind.BINARY, stream=True), materialize=True
            ),
            block=8,
            stream=_fused_builder(_calu_builder(48, 48, 8, 4, TreeKind.BINARY, stream=True)),
            backend=("lu", 48, 48, 8, 4, TreeKind.BINARY),
            fuse=8,
        )
    )
    targets.append(
        Target(
            "caqr-flat-40x24-fused8",
            _fused_builder(
                _caqr_builder(40, 24, 8, 3, TreeKind.FLAT, stream=True), materialize=True
            ),
            block=8,
            stream=_fused_builder(_caqr_builder(40, 24, 8, 3, TreeKind.FLAT, stream=True)),
            backend=("qr", 40, 24, 8, 3, TreeKind.FLAT),
            fuse=8,
        )
    )
    # Larger symbolic graphs: static proof scales past what we execute.
    for tree in (TreeKind.BINARY, TreeKind.FLAT):
        targets.append(
            Target(
                f"calu-{tree.value}-sym-256x128",
                lambda tree=tree: (
                    build_calu_graph(BlockLayout(256, 128, 16), 4, tree)[0],
                    None,
                ),
                stream=lambda tree=tree: (
                    calu_program(BlockLayout(256, 128, 16), 4, tree)[0],
                    None,
                ),
            )
        )
        targets.append(
            Target(
                f"caqr-{tree.value}-sym-256x128",
                lambda tree=tree: (
                    build_caqr_graph(BlockLayout(256, 128, 16), 4, tree)[0],
                    None,
                ),
                stream=lambda tree=tree: (
                    caqr_program(BlockLayout(256, 128, 16), 4, tree)[0],
                    None,
                ),
            )
        )
    targets.append(
        Target(
            "tiled-lu-sym-64x64",
            lambda: (build_tiled_lu_graph(64, 64, nb=16), None),
            stream=lambda: (tiled_lu_program(64, 64, nb=16), None),
        )
    )
    targets.append(
        Target(
            "tiled-qr-sym-64x64",
            lambda: (build_tiled_qr_graph(64, 64, nb=16), None),
            stream=lambda: (tiled_qr_program(64, 64, nb=16), None),
        )
    )
    targets.append(
        Target(
            "getrf-sym-128x128",
            lambda: (build_getrf_graph(128, 128, b=32), None),
            stream=lambda: (getrf_program(128, 128, b=32), None),
        )
    )
    targets.append(
        Target(
            "geqrf-sym-128x128",
            lambda: (build_geqrf_graph(128, 128, b=32), None),
            stream=lambda: (geqrf_program(128, 128, b=32), None),
        )
    )
    return targets


def verify_graph(
    graph: TaskGraph,
    *,
    A: np.ndarray | None = None,
    block: int | None = None,
    fuzz_build: Callable | None = None,
    fuzz_runs: int = 0,
    seed: int = 0,
    label: str | None = None,
) -> Report:
    """Run the verification passes over one graph; returns the report.

    Static passes (races, lint) always run.  The footprint sanitizer
    runs when ``A``/``block`` are given (and executes the graph); the
    schedule fuzzer runs when ``fuzz_build``/``fuzz_runs`` are given.
    ``label`` overrides the report's display name (default: graph name).
    """
    report = Report(label or graph.name)
    report.extend("races", check_races(graph))
    report.extend("lint", lint_graph(graph))
    if A is not None and block is not None:
        report.extend("sanitize", sanitize_footprints(graph, A, block))
    if fuzz_build is not None and fuzz_runs > 0:
        report.extend("fuzz", fuzz_schedules(fuzz_build, runs=fuzz_runs, seed=seed))
    return report


def _verify_target(target: Target, fuzz_runs: int, static_only: bool, seed: int) -> Report:
    built = target.build()
    graph = built[0]
    if static_only or not target.numeric:
        report = verify_graph(graph, label=target.name)
    else:
        # Recover the matrix the closures mutate: collect()'s first array.
        collect = built[1]
        A = collect()[0]
        report = verify_graph(
            graph,
            A=A,
            block=target.block,
            fuzz_build=target.build,
            fuzz_runs=fuzz_runs,
            seed=seed,
            label=target.name,
        )
    if target.stream is not None:
        report.extend(
            "equivalence",
            check_stream_equivalence(
                target.name,
                target.stream,
                target.build,
                execute=not static_only,
            ),
        )
    if target.backend is not None and not static_only:
        kind, m, n, b, tr, tree = target.backend
        report.extend(
            "backends",
            check_backend_equivalence(
                target.name, kind, m, n, b, tr, tree, seed=seed, fuse=target.fuse
            ),
        )
    return report


def self_test(seed: int = 0, verbose: bool = False) -> int:
    """Verify the verifier; returns a process exit code (0 = all detected)."""
    failures = 0

    # 1. Edge-drop mutation: the race detector must name the dropped pair.
    layout = BlockLayout(48, 48, 8)
    graph, _ = build_calu_graph(layout, 4, TreeKind.BINARY)
    baseline = [f for f in check_races(graph) if f.severity == "error"]
    if baseline:
        print("self-test FAIL: pristine CALU graph already has race errors")
        failures += 1
    u, v = pick_droppable_edge(graph, seed=seed)
    mutant = drop_edge(graph, u, v)
    hits = [
        f
        for f in check_races(mutant)
        if f.rule == "race" and set(f.tasks) == {u, v}
    ]
    if hits:
        if verbose:
            print(f"self-test: dropped edge {u} -> {v}; detector reported:")
            print(f"  {hits[0]}")
        print(f"self-test ok: edge-drop mutation ({u} -> {v}) detected as a race")
    else:
        print(
            f"self-test FAIL: dropped conflict edge {u} -> {v} but the race "
            "detector did not report that pair"
        )
        failures += 1

    # 2. Misdeclared footprint: the sanitizer must catch a write outside
    # the declared set.
    A = _random_matrix(48, 48)
    graph, _ = build_calu_graph(BlockLayout(48, 48, 8), 4, TreeKind.BINARY, A=A, guards=False)
    victim = None
    for task in graph.tasks:
        blocks = sorted(
            (k for k in task.writes if isinstance(k, tuple) and len(k) == 2
             and all(isinstance(x, int) for x in k)),
            key=repr,
        )
        if task.fn is not None and task.cost.kernel == "gemm" and blocks:
            victim = (task, blocks[0])
            break
    if victim is None:
        print("self-test FAIL: no numeric gemm task with a matrix write footprint")
        return 1
    task, hidden = victim
    task.meta["writes"] = task.writes - {hidden}
    findings = sanitize_footprints(graph, A, 8)
    hits = [
        f
        for f in findings
        if f.rule == "footprint" and f.tasks == (task.tid,) and f.block == hidden
    ]
    if hits:
        if verbose:
            print(f"self-test: hid block {hidden} from task #{task.tid}; sanitizer reported:")
            print(f"  {hits[0]}")
        print(
            f"self-test ok: misdeclared footprint (task #{task.tid}, block {hidden}) detected"
        )
    else:
        print(
            f"self-test FAIL: hid write block {hidden} from task #{task.tid} "
            f"{task.name!r} but the sanitizer did not flag it"
        )
        failures += 1

    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Prove race-freedom and lint the CALU/CAQR/baseline task graphs.",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=3,
        metavar="N",
        help="random-schedule fuzz runs per numeric graph (default 3; 0 disables)",
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip the dynamic passes (no execution; races + lint only)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the verifier via edge-drop, footprint and lock mutations",
    )
    parser.add_argument(
        "--locks",
        action="store_true",
        help="run only the lockcheck static pass over the runtime/service code",
    )
    parser.add_argument("--seed", type=int, default=0, help="seed for fuzzing/mutation")
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print info notes, not just gating findings"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        rc_graph = self_test(seed=args.seed, verbose=args.verbose)
        rc_locks = lock_self_test(verbose=args.verbose)
        return 1 if rc_graph or rc_locks else 0

    if args.locks:
        return _run_lockcheck_pass(args.verbose)

    failed = 0
    for target in default_targets():
        report = _verify_target(target, args.fuzz, args.static_only, args.seed)
        print(report.summary())
        shown = report.findings if args.verbose else report.gating
        for finding in shown:
            print(f"  {finding}")
        if not report.ok:
            failed += 1
    # The default sweep also lock-checks the executor stack itself.
    failed += _run_lockcheck_pass(args.verbose)
    if failed:
        print(f"FAILED: {failed} target(s) with gating findings")
        return 1
    print("all graphs race-free and lint-clean; executor lock discipline ok")
    return 0


def _run_lockcheck_pass(verbose: bool) -> int:
    """Print the lockcheck report; returns 1 when it gates, else 0."""
    report, analysis = run_lockcheck()
    print(report.summary())
    for finding in report.findings if verbose else report.gating:
        print(f"  {finding}")
    if verbose:
        print("  lock-order graph:")
        for (a, b), ws in sorted(analysis.edges.items()):
            print(f"    {a} -> {b}  ({ws[0].describe()})")
        for entry, locks in sorted(analysis.entry_locks.items()):
            print(f"  entry {entry}: {', '.join(locks) or '(no locks)'}")
    return 0 if report.ok else 1
