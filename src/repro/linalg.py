"""High-level solver API on top of the communication-avoiding factorizations.

Convenience routines a downstream user expects from an LU/QR library:
one-call solves, least squares, iterative refinement, 1-norm condition
estimation (Hager-Higham, as in LAPACK ``gecon``) and determinants —
all driven by the CALU/CAQR factorizations.

Resilience: :func:`solve` validates its inputs up front, monitors the
achieved residual, and auto-escalates to iterative refinement when the
first solve falls short of working accuracy — warning (and reporting
the achieved residual via :class:`SolveReport`) if refinement still
cannot reach it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.calu import CALUFactorization, calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.resilience.health import NumericalHealthWarning, validate_matrix, validate_rhs

__all__ = [
    "SolveReport",
    "solve",
    "lstsq",
    "iterative_refinement",
    "condest_1",
    "slogdet",
    "det",
]


@dataclass
class SolveReport:
    """What :func:`solve` achieved: residual, refinement steps, warnings.

    ``residual`` is the scaled backward-error residual
    ``||rhs - A x|| / (||A|| ||x|| + ||rhs||)``; ``converged`` says it
    met the requested tolerance; ``degraded_panels`` forwards the
    factorization's partial-pivoting fallbacks.
    """

    residual: float = float("nan")
    tol: float = float("nan")
    refine_steps: int = 0
    converged: bool = True
    degraded_panels: tuple[int, ...] = ()
    history: list[float] = field(default_factory=list)


def _scaled_residual(A: np.ndarray, x: np.ndarray, rhs: np.ndarray) -> float:
    """Backward-error style residual ``||r|| / (||A|| ||x|| + ||rhs||)``."""
    r = float(np.linalg.norm(rhs - A @ x))
    denom = float(np.linalg.norm(A, ord=np.inf) * np.linalg.norm(x) + np.linalg.norm(rhs))
    return r / denom if denom > 0 else r


def solve(
    A: np.ndarray,
    rhs: np.ndarray,
    b: int | None = None,
    tr: int | None = None,
    tree: TreeKind | None = None,
    refine: int = 0,
    cores: int = 4,
    auto_refine: bool = True,
    rtol: float | None = None,
    report: bool = False,
    checkpoint=None,
    executor=None,
    lookahead: int | None = None,
    service=None,
    deadline_s: float | None = None,
) -> np.ndarray:
    """Solve the square system ``A x = rhs`` with CALU.

    Unset parameters are filled from the paper's tuning heuristics
    (:func:`repro.core.autotune.recommend_params`).  ``refine`` extra
    steps of iterative refinement sharpen the result to working
    accuracy (see :func:`iterative_refinement`).

    With ``auto_refine`` (the default) the scaled residual
    ``||rhs - A x|| / (||A|| ||x|| + ||rhs||)`` is checked against
    *rtol* (default ``sqrt(n) * 100 * eps``); a short-falling solve
    escalates to iterative refinement automatically, and a
    :class:`~repro.resilience.health.NumericalHealthWarning` reports
    the achieved residual if refinement still cannot reach it.  With
    ``report=True`` returns ``(x, SolveReport)``.  *checkpoint* (a
    :class:`~repro.resilience.checkpoint.Checkpoint`) is forwarded to
    :func:`~repro.core.calu.calu`, arming panel-granularity
    checkpoint/restart for the factorization.  *executor* and
    *lookahead* are likewise forwarded: engine-backed executors
    (threaded, work-stealing, simulated) stream the factorization's
    graph program window-by-window, and *lookahead* bounds the
    streamed window (``None`` = the process default,
    :func:`repro.core.priorities.lookahead_depth`).  Pass
    ``executor="process"`` (or a
    :class:`~repro.runtime.process.ProcessExecutor`) to run the
    kernels in a worker-process pool over a shared-memory arena —
    true multicore execution outside the GIL.

    With *service* (a
    :class:`~repro.service.service.FactorizationService`) the request
    is routed through the overload-safe service instead: shared worker
    pool, cached graph plans, admission control and — with
    *deadline_s* — a per-request deadline.  May then raise
    :class:`~repro.service.admission.AdmissionRejected` or
    :class:`~repro.service.admission.DeadlineExceeded`; *checkpoint*,
    *executor* and *refine* are the direct path's knobs and cannot be
    combined with it.
    """
    if service is not None:
        if checkpoint is not None or executor is not None or refine > 0:
            raise ValueError(
                "service= cannot be combined with checkpoint=, executor= or refine="
            )
        return service.solve(
            A,
            rhs,
            b=b,
            tr=tr,
            tree=tree,
            auto_refine=auto_refine,
            rtol=rtol,
            report=report,
            deadline_s=deadline_s,
        )
    if deadline_s is not None:
        raise ValueError("deadline_s requires service=")
    from repro.core.autotune import recommend_params

    A = np.asarray(validate_matrix(A, "A"), dtype=float)
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"solve requires a square matrix, got shape {A.shape}")
    rhs = np.asarray(validate_rhs(rhs, A.shape[0], "rhs"), dtype=float)
    rec = recommend_params(A.shape[0], A.shape[1], cores=cores, kind="lu")
    f = calu(A, b=b if b is not None else rec.b, tr=tr if tr is not None else rec.tr,
             tree=tree if tree is not None else rec.tree, checkpoint=checkpoint,
             executor=executor, lookahead=lookahead)
    x = f.solve(rhs)
    rep = SolveReport(degraded_panels=f.degraded_panels)
    if refine > 0:
        x, hist = iterative_refinement(A, f, rhs, max_iters=refine, x0=x)
        rep.refine_steps = len(hist) - 1
        rep.history = hist
    if auto_refine or report:
        n = A.shape[0]
        tol = rtol if rtol is not None else float(np.sqrt(n) * 100 * np.finfo(A.dtype).eps)
        rep.tol = tol
        rep.residual = _scaled_residual(A, x, rhs)
        if auto_refine and rep.residual > tol:
            scale = float(
                np.linalg.norm(A, ord=np.inf) * np.linalg.norm(x) + np.linalg.norm(rhs)
            )
            x, hist = iterative_refinement(
                A, f, rhs, max_iters=5, tol=tol * scale, x0=x
            )
            rep.refine_steps += len(hist) - 1
            rep.history.extend(hist)
            rep.residual = _scaled_residual(A, x, rhs)
        rep.converged = bool(rep.residual <= tol)
        if not rep.converged and auto_refine:
            warnings.warn(
                f"solve: residual {rep.residual:.3g} did not reach tolerance "
                f"{tol:.3g} after {rep.refine_steps} refinement steps "
                "(ill-conditioned system?)",
                NumericalHealthWarning,
                stacklevel=2,
            )
    return (x, rep) if report else x


def lstsq(
    A: np.ndarray,
    rhs: np.ndarray,
    b: int | None = None,
    tr: int | None = None,
    tree: TreeKind | None = None,
    cores: int = 4,
    executor=None,
    lookahead: int | None = None,
    service=None,
    deadline_s: float | None = None,
) -> np.ndarray:
    """Least-squares solution of ``min ||A x - rhs||_2`` with CAQR (``m >= n``).

    Unset parameters are filled from the paper's tuning heuristics.
    *executor*/*lookahead* are forwarded to :func:`~repro.core.caqr.caqr`
    (engine-backed executors stream the graph program; *lookahead*
    bounds the streamed window).  ``executor="process"`` runs the
    panel/update kernels in a worker-process pool over shared memory.
    With *service* the request goes through the overload-safe
    :class:`~repro.service.service.FactorizationService` (cannot be
    combined with *executor*); *deadline_s* bounds it end to end.
    """
    if service is not None:
        if executor is not None:
            raise ValueError("service= cannot be combined with executor=")
        return service.lstsq(A, rhs, b=b, tr=tr, tree=tree, deadline_s=deadline_s)
    if deadline_s is not None:
        raise ValueError("deadline_s requires service=")
    from repro.core.autotune import recommend_params

    A = np.asarray(validate_matrix(A, "A"), dtype=float)
    if A.shape[0] < A.shape[1]:
        raise ValueError(f"lstsq requires m >= n, got shape {A.shape}")
    rhs = np.asarray(validate_rhs(rhs, A.shape[0], "rhs"), dtype=float)
    rec = recommend_params(A.shape[0], A.shape[1], cores=cores, kind="qr")
    f = caqr(A, b=b if b is not None else rec.b, tr=tr if tr is not None else rec.tr,
             tree=tree if tree is not None else rec.tree,
             executor=executor, lookahead=lookahead)
    return f.solve_ls(rhs)


def iterative_refinement(
    A: np.ndarray,
    f: CALUFactorization,
    rhs: np.ndarray,
    max_iters: int = 5,
    tol: float = 0.0,
    x0: np.ndarray | None = None,
) -> tuple[np.ndarray, list[float]]:
    """Classic iterative refinement of ``A x = rhs`` using factors *f*.

    Returns ``(x, residual_norms)`` where ``residual_norms[k]`` is
    ``||rhs - A x_k||_2`` after step ``k`` (index 0 is the initial
    solve).  Stops early when the residual drops below *tol*.
    """
    A = np.asarray(A, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    x = f.solve(rhs) if x0 is None else np.array(x0, dtype=float)
    history = [float(np.linalg.norm(rhs - A @ x))]
    for _ in range(max_iters):
        r = rhs - A @ x
        x = x + f.solve(r)
        history.append(float(np.linalg.norm(rhs - A @ x)))
        if history[-1] <= tol:
            break
    return x, history


def condest_1(f: CALUFactorization, anorm: float | None = None, a: np.ndarray | None = None) -> float:
    """Estimate the 1-norm condition number from a CALU factorization.

    Hager-Higham power iteration on ``||A^{-1}||_1`` (the same scheme
    LAPACK ``gecon`` uses), multiplied by ``||A||_1``.  Provide either
    *anorm* (precomputed ``||A||_1``) or the original matrix *a*.
    """
    n = f.lu.shape[0]
    if f.lu.shape[0] != f.lu.shape[1]:
        raise ValueError("condest_1 requires a square factorization")
    if anorm is None:
        if a is None:
            raise ValueError("provide anorm or the original matrix a")
        anorm = float(np.abs(np.asarray(a)).sum(axis=0).max())
    if anorm == 0.0:
        return float("inf")

    # Hager's algorithm: maximize ||A^{-1} x||_1 over ||x||_1 = 1.
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(5):
        y = f.solve(x)
        est_new = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0.0] = 1.0
        z = f.solve(xi, trans=True)
        j = int(np.argmax(np.abs(z)))
        if est_new <= est or np.abs(z[j]) <= float(z @ x):
            est = max(est, est_new)
            break
        est = est_new
        x = np.zeros(n)
        x[j] = 1.0
    # Alternative lower bound (LAPACK's safeguard vector).
    v = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1)) for i in range(n)])
    alt = 2.0 * float(np.abs(f.solve(v)).sum()) / (3.0 * n)
    est = max(est, alt)
    return est * anorm


def slogdet(f: CALUFactorization) -> tuple[float, float]:
    """Sign and log-absolute-value of ``det(A)`` from CALU factors."""
    m, n = f.lu.shape
    if m != n:
        raise ValueError("slogdet requires a square factorization")
    diag = np.diag(f.lu)
    if np.any(diag == 0.0):
        return 0.0, float("-inf")
    # Permutation parity: count transpositions in the swap sequence.
    swaps = int(np.sum(f.piv != np.arange(len(f.piv))))
    sign = (-1.0) ** swaps * float(np.prod(np.sign(diag)))
    return sign, float(np.sum(np.log(np.abs(diag))))


def det(f: CALUFactorization) -> float:
    """Determinant of ``A`` from CALU factors (may over/underflow; see
    :func:`slogdet` for the stable form)."""
    sign, logdet = slogdet(f)
    return sign * float(np.exp(logdet))
