"""Shared fixtures for the benchmark suite.

Every paper-artifact benchmark writes its formatted table to
``benchmarks/tables/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the regenerated tables on disk next to
the timing report.  ``benchmarks/results/`` is reserved for the
checked-in ``BENCH_*.json`` perf-trajectory artifacts; keeping the
throwaway text renders out of it means ``git status`` stays clean
after a benchmark run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

TABLES_DIR = Path(__file__).parent / "tables"


@pytest.fixture
def save_result():
    """Callable fixture: ``save_result(name, formatted_text)``."""

    def _save(name: str, text: str) -> Path:
        TABLES_DIR.mkdir(exist_ok=True)
        path = TABLES_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
