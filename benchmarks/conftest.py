"""Shared fixtures for the benchmark suite.

Every paper-artifact benchmark writes its formatted table to
``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the regenerated tables on disk next to
the timing report.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Callable fixture: ``save_result(name, formatted_text)``."""

    def _save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
