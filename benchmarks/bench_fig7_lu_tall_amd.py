"""Figure 7: LU GFLOP/s on tall-skinny matrices, m=1e5, AMD 16-core model.

Paper claims checked: CALU(Tr=16) is on average ~5x faster than
ACML_dgetrf and clearly ahead of PLASMA across the n sweep.
"""

import numpy as np

from repro.bench.experiments import fig7


def test_fig7(benchmark, save_result):
    t = benchmark.pedantic(fig7, rounds=1, iterations=1)
    save_result("fig7", t.format())

    calu16 = t.column("CALU(Tr=16)")
    calu8 = t.column("CALU(Tr=8)")
    acml = t.column("ACML_dgetrf")
    plasma = t.column("PLASMA_dgetrf")

    # Average speedup over ACML ~5x (accept 3-7x).
    avg = float(np.mean(calu16 / acml))
    assert 3.0 < avg < 7.0

    # Tr=16 beats Tr=8 on the 16-core machine for tall-skinny shapes.
    assert (calu16 >= calu8 * 0.95).all()

    # CALU ahead of PLASMA across the sweep.
    assert (calu16 > plasma).all()
