"""Figure 5: LU GFLOP/s on tall-skinny matrices, m=1e5, Intel 8-core model.

Paper claims checked: CALU(Tr=8) is the best CALU setting, 1.5-2x over
MKL_dgetrf across the n range, far above MKL_dgetf2, and several times
faster than PLASMA for n <= 300 with the gap narrowing as n grows.
"""

import numpy as np

from repro.bench.experiments import fig5


def test_fig5(benchmark, save_result):
    t = benchmark.pedantic(fig5, rounds=1, iterations=1)
    save_result("fig5", t.format())

    calu8 = t.column("CALU(Tr=8)")
    getrf = t.column("MKL_dgetrf")
    getf2 = t.column("MKL_dgetf2")
    plasma = t.column("PLASMA_dgetrf")

    # CALU beats dgetrf everywhere, by a bounded factor (paper: 1.5-2.3x).
    assert (calu8 > getrf).all()
    mid = slice(2, None)  # n >= 50
    assert (calu8[mid] / getrf[mid] > 1.3).all()
    assert (calu8 / getrf < 4.5).all()

    # dgetf2 is far below everything (the panel bottleneck).
    assert (calu8 / getf2 > 4.0)[2:].all()

    # CALU/PLASMA: large at small n, shrinking towards ~1 at n=1000.
    r = calu8 / plasma
    assert r[0] > 4.0  # n=10 (paper: 9.4x)
    assert r[-1] < 2.0  # n=1000 (paper: 1.1x)
    assert r[0] > r[-1]
