"""The paper's Section V extensions / future-work directions.

* ``B > b``: a larger trailing-update block size.  The paper's
  prediction: fewer tasks and better BLAS3 use pay off when the
  scheduling overhead matters; at B too large, parallelism is lost.
* Hybrid update: "combining a fast panel factorization as in CALU with
  a highly optimized update of the trailing matrix as in MKL_dgetrf can
  lead to a more efficient algorithm for square matrices."
"""

from repro.bench.experiments import bb_extension, hybrid_update
from repro.machine.presets import intel8_mkl


def test_bb_extension_baseline(benchmark, save_result):
    t = benchmark.pedantic(bb_extension, rounds=1, iterations=1)
    save_result("extension_bb", t.format())
    # At the default (calibrated, modest) scheduling overhead, B = b is
    # near-optimal and very large B loses parallelism.
    for n in t.row_labels:
        assert t.cell(n, "B=100") > t.cell(n, "B=800")


def test_bb_extension_pays_off_under_overhead(benchmark, save_result):
    mach = intel8_mkl(task_overhead_us=160.0)

    def run():
        return bb_extension(machine=mach, sizes=(2000,))

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("extension_bb_overhead", t.format())
    # The paper's prediction: with costly scheduling, coarser updates win.
    assert t.cell("2000", "B=200") > t.cell("2000", "B=100")


def test_hybrid_update(benchmark, save_result):
    t = benchmark.pedantic(hybrid_update, rounds=1, iterations=1)
    save_result("extension_hybrid", t.format())
    for n in t.row_labels:
        # Hybrid never loses to plain CALU...
        assert t.cell(n, "hybrid(Tr=4)") >= t.cell(n, "CALU(Tr=4)") * 0.999
    # ...and realizes the paper's conjecture at large sizes: at 5000 the
    # hybrid beats the pure vendor library.
    assert t.cell("5000", "hybrid(Tr=4)") > t.cell("5000", "MKL_dgetrf")
