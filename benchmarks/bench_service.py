"""Service-layer cost model: fault-free overhead and behaviour under overload.

Two questions decide whether the service front-end can wrap every
solve by default:

* What does the service add on a **cached shape** when nothing goes
  wrong?  Admission, plan checkout and the deadline reaper must stay
  under 5% on top of a direct ``linalg.solve`` of the same problem.
* What happens when offered load exceeds capacity?  The sweep drives
  the service at multiples of its measured sustainable rate and
  reports p50/p99 latency of admitted requests plus the shed rate —
  the point being that p99 stays bounded *because* excess load is
  shed at admission instead of queueing without bound.

Results land in ``results/BENCH_service.json`` (machine-readable) and
``results/bench_service.txt`` (formatted table).  Set
``SERVICE_BENCH_SMOKE=1`` for tiny CI shapes with a relaxed overhead
gate.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.linalg import solve as linalg_solve
from repro.service import AdmissionRejected, FactorizationService, ServiceConfig

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = bool(os.environ.get("SERVICE_BENCH_SMOKE"))
N = 128 if SMOKE else 512
CORES = 2 if SMOKE else 4
BEST_OF = 3 if SMOKE else 7
SWEEP_REQUESTS = 8 if SMOKE else 24
OVERHEAD_GATE_PCT = 50.0 if SMOKE else 5.0
LOADS = (0.5, 2.0, 4.0)


def _paired_best(fns, n=BEST_OF):
    """Best-of-*n* for several configurations, interleaved per round so
    machine drift (warmup, other processes) biases none of them."""
    best = [float("inf")] * len(fns)
    for _ in range(n):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _percentile(sorted_vals, q):
    if not sorted_vals:
        return float("nan")
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _overload_sweep(svc, A, rhs, service_s):
    """Open-loop load sweep: fire requests at multiples of the
    sustainable rate, classify every outcome, report tail latency.

    Concurrent requests share the same cores, so the backend's
    aggregate capacity is ~1/service_s no matter how many admission
    slots exist; the slots only bound *concurrency*, not throughput."""
    sustainable = 1.0 / max(service_s, 1e-6)
    rows = []
    for load in LOADS:
        interval = 1.0 / (load * sustainable)
        outcomes = []
        lock = threading.Lock()

        def client():
            t0 = time.perf_counter()
            try:
                svc.solve(A, rhs)
                with lock:
                    outcomes.append(("ok", time.perf_counter() - t0))
            except AdmissionRejected:
                with lock:
                    outcomes.append(("shed", time.perf_counter() - t0))

        threads = []
        t_start = time.perf_counter()
        for i in range(SWEEP_REQUESTS):
            target = t_start + i * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            t = threading.Thread(target=client)
            t.start()
            threads.append(t)
        for t in threads:
            t.join(timeout=600)
        elapsed = time.perf_counter() - t_start

        lat = sorted(s for kind, s in outcomes if kind == "ok")
        shed = sum(1 for kind, _ in outcomes if kind == "shed")
        rows.append(
            {
                "load": load,
                "offered": SWEEP_REQUESTS,
                "admitted": len(lat),
                "shed": shed,
                "shed_rate": shed / SWEEP_REQUESTS,
                "throughput_rps": len(lat) / max(elapsed, 1e-9),
                "p50_ms": 1e3 * _percentile(lat, 0.50),
                "p99_ms": 1e3 * _percentile(lat, 0.99),
            }
        )
    return sustainable, rows


def test_service_report(save_result):
    rng = np.random.default_rng(17)
    A = rng.standard_normal((N, N)) + N * np.eye(N)
    rhs = rng.standard_normal(N)

    cfg = ServiceConfig(cores=CORES, backend="threaded", max_active=2, max_queue=2)
    with FactorizationService(cfg) as svc:
        # Warm both paths: direct solve spins up its thread machinery,
        # the first service call builds and caches the plan.
        linalg_solve(A, rhs, cores=CORES)
        svc.solve(A, rhs)

        direct_s, service_s = _paired_best(
            [
                lambda: linalg_solve(A, rhs, cores=CORES),
                lambda: svc.solve(A, rhs),
            ]
        )
        overhead_pct = 100.0 * (service_s - direct_s) / direct_s

        sustainable, sweep = _overload_sweep(svc, A, rhs, service_s)
        stats = svc.stats()

    doc = {
        "bench": "service",
        "config": {
            "n": N,
            "cores": CORES,
            "best_of": BEST_OF,
            "max_active": cfg.max_active,
            "max_queue": cfg.max_queue,
            "sweep_requests": SWEEP_REQUESTS,
            "smoke": SMOKE,
        },
        "fault_free": {
            "direct_solve_s": direct_s,
            "service_solve_s": service_s,
            "overhead_pct": overhead_pct,
            "gate_pct": OVERHEAD_GATE_PCT,
            "plan_hits": stats["plans"]["hits"],
        },
        "overload": {
            "sustainable_rps": sustainable,
            "sweep": sweep,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"Factorization service, {N}x{N} solve on {CORES} cores"
        f" (cached plan, threaded backend)",
        f"direct {direct_s * 1e3:8.1f} ms   service {service_s * 1e3:8.1f} ms"
        f"   overhead {overhead_pct:+.2f}% (gate {OVERHEAD_GATE_PCT:.0f}%)",
        "",
        f"Overload sweep (sustainable {sustainable:.1f} req/s,"
        f" max_active={cfg.max_active}, max_queue={cfg.max_queue})",
        f"{'load':>5} {'offered':>8} {'admitted':>9} {'shed':>5}"
        f" {'shed%':>6} {'req/s':>7} {'p50 ms':>8} {'p99 ms':>8}",
    ]
    for r in sweep:
        lines.append(
            f"{r['load']:5.1f} {r['offered']:8d} {r['admitted']:9d}"
            f" {r['shed']:5d} {100 * r['shed_rate']:6.1f}"
            f" {r['throughput_rps']:7.1f} {r['p50_ms']:8.1f} {r['p99_ms']:8.1f}"
        )
    save_result("bench_service", "\n".join(lines))

    # The acceptance gates.
    assert overhead_pct < OVERHEAD_GATE_PCT, (
        f"service overhead {overhead_pct:.2f}% exceeds {OVERHEAD_GATE_PCT}% "
        f"(direct {direct_s:.4f}s vs service {service_s:.4f}s)"
    )
    # Past saturation the queue is bounded, so overload must shed.
    assert sweep[-1]["shed"] > 0, "4x overload shed nothing: queue unbounded?"
    # Everything admitted came back: offered = admitted + shed.
    for r in sweep:
        assert r["admitted"] + r["shed"] == r["offered"]
