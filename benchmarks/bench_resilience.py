"""Fault-free overhead of the resilience layer.

The guards, the retry plumbing, and the watchdog must be effectively
free when nothing goes wrong — the acceptance target is <5% on a
fault-free CALU. Two views:

* pytest-benchmark timings of calu/caqr with guards on vs. off;
* a formatted overhead table (``results/resilience_overhead.txt``)
  from a best-of-N wall-clock comparison, including the resilient
  executor (retry policy + watchdog armed, no faults injected).
"""

import time

import numpy as np
import pytest

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.resilience.recovery import RetryPolicy
from repro.runtime.threaded import ThreadedExecutor


@pytest.fixture(scope="module")
def square():
    return np.random.default_rng(0).standard_normal((384, 384))


def test_calu_guards_on(benchmark, square):
    f = benchmark(lambda: calu(square, b=64, tr=4))
    assert np.isfinite(f.lu).all()


def test_calu_guards_off(benchmark, square):
    f = benchmark(lambda: calu(square, b=64, tr=4, guards=False))
    assert np.isfinite(f.lu).all()


def test_caqr_guards_on(benchmark, square):
    f = benchmark(lambda: caqr(square, b=64, tr=4))
    assert np.isfinite(f.packed).all()


def test_caqr_guards_off(benchmark, square):
    f = benchmark(lambda: caqr(square, b=64, tr=4, guards=False))
    assert np.isfinite(f.packed).all()


def test_calu_resilient_executor_no_faults(benchmark, square):
    def run():
        ex = ThreadedExecutor(
            4, retry=RetryPolicy(max_retries=2), task_timeout=60.0, stall_timeout=60.0
        )
        return calu(square, b=64, tr=4, executor=ex)

    f = benchmark(run)
    assert np.isfinite(f.lu).all()


def _best_of(fn, n=5):
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_overhead_table(save_result):
    A = np.random.default_rng(2).standard_normal((512, 512))
    rows = []

    base = _best_of(lambda: calu(A.copy(), b=64, tr=4, guards=False))
    for label, fn in [
        ("calu guards=True", lambda: calu(A.copy(), b=64, tr=4)),
        (
            "calu resilient executor",
            lambda: calu(
                A.copy(),
                b=64,
                tr=4,
                executor=ThreadedExecutor(
                    4,
                    retry=RetryPolicy(max_retries=2),
                    task_timeout=60.0,
                    stall_timeout=60.0,
                ),
            ),
        ),
    ]:
        t = _best_of(fn)
        rows.append((label, t, 100.0 * (t - base) / base))

    qbase = _best_of(lambda: caqr(A.copy(), b=64, tr=4, guards=False))
    tq = _best_of(lambda: caqr(A.copy(), b=64, tr=4))
    rows.append(("caqr guards=True", tq, 100.0 * (tq - qbase) / qbase))

    lines = [
        "Fault-free resilience overhead (512x512, b=64, tr=4, best of 5)",
        f"{'configuration':<28}{'seconds':>10}{'overhead':>10}",
        f"{'calu guards=False (base)':<28}{base:>10.4f}{'--':>10}",
    ]
    for label, t, pct in rows:
        lines.append(f"{label:<28}{t:>10.4f}{pct:>+9.1f}%")
    text = "\n".join(lines)
    save_result("resilience_overhead", text)
    # The acceptance target: guards are <5% on a fault-free run.
    assert rows[0][2] < 5.0
