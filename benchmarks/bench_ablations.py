"""Design-choice ablations called out in DESIGN.md section 5.

* reduction-tree shape (binary / flat / hybrid) for TSQR;
* scheduler look-ahead depth (0 / 1 / infinite) for square CALU;
* streaming look-ahead depth d in {0, 1, 2}: numeric threaded runs
  through the process-default knob (priorities.lookahead_depth), which
  also bounds the streamed graph window;
* per-task scheduling-overhead sensitivity vs block size (the paper's
  "too many tasks" caveat);
* pivoting-strategy stability (tournament vs partial vs incremental).
"""

from repro.bench.experiments import (
    lookahead_ablation,
    lookahead_depth_ablation,
    overhead_ablation,
    stability,
    tree_ablation,
)


def test_tree_ablation(benchmark, save_result):
    t = benchmark.pedantic(tree_ablation, rounds=1, iterations=1)
    save_result("ablation_trees", t.format())
    # All tree shapes are viable; flat is competitive on shared memory
    # (the paper's observation motivating the height-1 tree).
    flat = t.column("flat")
    binary = t.column("binary")
    assert (flat > 0.6 * binary).all()


def test_lookahead_ablation(benchmark, save_result):
    t = benchmark.pedantic(lookahead_ablation, rounds=1, iterations=1)
    save_result("ablation_lookahead", t.format())
    for n in t.row_labels:
        assert t.cell(n, "lookahead=1") >= 0.95 * t.cell(n, "lookahead=0")


def test_lookahead_depth_ablation(benchmark, save_result):
    t = benchmark.pedantic(lookahead_depth_ablation, rounds=1, iterations=1)
    save_result("ablation_lookahead_depth", t.format())
    # The emitted-ahead window (hence the scheduler working set) widens
    # monotonically with d; CALU's window sizes shrink with K, so the
    # peak is the initial d+2-window emission.
    live = t.column("peak live tasks")
    assert (live[:-1] <= live[1:]).all()
    assert live[0] < live[-1]
    # All depths stay in the same performance regime (no pathological
    # serialization at d=0 or runaway overhead at d=2).
    secs = t.column("seconds")
    assert secs.max() <= 2.5 * secs.min()


def test_overhead_ablation(benchmark, save_result):
    t = benchmark.pedantic(overhead_ablation, rounds=1, iterations=1)
    save_result("ablation_overhead", t.format())
    # Larger overhead monotonically degrades every configuration...
    for j in range(t.values.shape[1]):
        col = t.values[:, j]
        assert (col[:-1] >= col[1:] * 0.999).all()
    # ...and the small-block (many-task) configuration degrades fastest.
    drop = t.values[0] / t.values[-1]
    assert drop[0] > drop[-1]


def test_stability_ablation(benchmark, save_result):
    t = benchmark.pedantic(stability, rounds=1, iterations=1)
    save_result("ablation_stability", t.format())
    for n in t.row_labels:
        gepp = t.cell(n, "GEPP")
        calu = t.cell(n, "CALU(Tr=8)")
        inc = t.cell(n, "tiled(nb=n/16)")
        assert calu < 5.0 * gepp
        assert inc > calu
