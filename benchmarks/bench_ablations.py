"""Design-choice ablations called out in DESIGN.md section 5.

* reduction-tree shape (binary / flat / hybrid) for TSQR;
* scheduler look-ahead depth (0 / 1 / infinite) for square CALU;
* per-task scheduling-overhead sensitivity vs block size (the paper's
  "too many tasks" caveat);
* pivoting-strategy stability (tournament vs partial vs incremental).
"""

from repro.bench.experiments import (
    lookahead_ablation,
    overhead_ablation,
    stability,
    tree_ablation,
)


def test_tree_ablation(benchmark, save_result):
    t = benchmark.pedantic(tree_ablation, rounds=1, iterations=1)
    save_result("ablation_trees", t.format())
    # All tree shapes are viable; flat is competitive on shared memory
    # (the paper's observation motivating the height-1 tree).
    flat = t.column("flat")
    binary = t.column("binary")
    assert (flat > 0.6 * binary).all()


def test_lookahead_ablation(benchmark, save_result):
    t = benchmark.pedantic(lookahead_ablation, rounds=1, iterations=1)
    save_result("ablation_lookahead", t.format())
    for n in t.row_labels:
        assert t.cell(n, "lookahead=1") >= 0.95 * t.cell(n, "lookahead=0")


def test_overhead_ablation(benchmark, save_result):
    t = benchmark.pedantic(overhead_ablation, rounds=1, iterations=1)
    save_result("ablation_overhead", t.format())
    # Larger overhead monotonically degrades every configuration...
    for j in range(t.values.shape[1]):
        col = t.values[:, j]
        assert (col[:-1] >= col[1:] * 0.999).all()
    # ...and the small-block (many-task) configuration degrades fastest.
    drop = t.values[0] / t.values[-1]
    assert drop[0] > drop[-1]


def test_stability_ablation(benchmark, save_result):
    t = benchmark.pedantic(stability, rounds=1, iterations=1)
    save_result("ablation_stability", t.format())
    for n in t.row_labels:
        gepp = t.cell(n, "GEPP")
        calu = t.cell(n, "CALU(Tr=8)")
        inc = t.cell(n, "tiled(nb=n/16)")
        assert calu < 5.0 * gepp
        assert inc > calu
