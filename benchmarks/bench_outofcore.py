"""Out-of-core tall-skinny factorization under a capped budget (ISSUE 10).

Factors a 1,000,000 x 64 panel (512 MiB) through the mmap-backed tile
plane with a 40 MiB fast-memory budget — a 12.8x out-of-core ratio —
and checks the measured store traffic against the closed forms in
:mod:`repro.analysis.io_model`:

* **tsqr / tslu streaming**: total words moved (staging write + leaf
  reads + factored write-backs) must land within ``[0.5, 2]x`` of
  ``panel_io_ca_flat``.  Asserted unconditionally — it is a property
  of the streaming schedule, not of the host.
* **direct TSQR**: the R-only pass touches no store at all (the
  read-once floor); with ``want_q`` the measured traffic is compared
  against ``panel_io_direct_tsqr(want_q=True)``.
* **bitwise parity**: on a size the in-memory drivers can also run,
  the out-of-core results agree bit for bit.
* **numerics at full scale**: the panel never exists in memory, so
  correctness is checked via the Gram identity ``R'R = A'A`` (with
  ``A'A`` accumulated streaming) and a sampled ``PA = LU`` window.

``OUTOFCORE_SMOKE=1`` shrinks the panel to 100,000 x 32 with a 2 MiB
budget (same 12x+ out-of-core ratio) for CI.  Results land in
``results/BENCH_outofcore.json`` and ``tables/bench_outofcore.txt``.
"""

import json
import os
import resource
import time
from pathlib import Path

import numpy as np

from repro.analysis.io_model import predicted_panel_io
from repro.core.outofcore import direct_tsqr, tslu_ooc, tsqr_ooc
from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from repro.counters import counting
from repro.kernels.lu import piv_to_perm

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = os.environ.get("OUTOFCORE_SMOKE", "") not in ("", "0")
if SMOKE:
    M, N, BUDGET = 100_000, 32, 2 << 20
else:
    M, N, BUDGET = 1_000_000, 64, 40 << 20
N_WORKERS = 2
PANEL_BYTES = M * N * 8
GEN_STEP = 8192  # generator stride (absolute-aligned: chunking-invariant)


def _fill(r0: int, r1: int) -> np.ndarray:
    """Panel rows [r0, r1) as a pure function of the absolute row index."""
    out = np.empty((r1 - r0, N))
    s = (r0 // GEN_STEP) * GEN_STEP
    while s < r1:
        blk = np.random.default_rng(s).standard_normal((min(GEN_STEP, M - s), N))
        a0, a1 = max(r0, s), min(r1, s + GEN_STEP)
        out[a0 - r0 : a1 - r0] = blk[a0 - s : a1 - s]
        s += GEN_STEP
    return out


SOURCE = ((M, N), _fill)


def _gram() -> np.ndarray:
    """A'A accumulated streaming — N x N resident, panel never held."""
    G = np.zeros((N, N))
    for r0 in range(0, M, GEN_STEP):
        blk = _fill(r0, min(M, r0 + GEN_STEP))
        G += blk.T @ blk
    return G


def _maxrss_bytes() -> int:
    kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return kb << 10  # Linux reports KiB


def _traffic_row(name, kind, wall_s, ctr, n_chunks, staged_bytes, extra_words=0):
    """Pair measured store traffic with its io_model closed form.

    ``extra_words`` accounts for source reads that bypass the store
    (the generator hands blocks straight to the staging/leaf kernels),
    so direct TSQR's read-once floor is represented honestly.
    """
    measured_words = (ctr.store_read_bytes + ctr.store_write_bytes) // 8 + extra_words
    predicted = predicted_panel_io(kind, M, N, BUDGET // 8)
    ratio = measured_words / predicted
    assert 0.5 <= ratio <= 2.0, (
        f"{name}: measured/predicted store traffic = {ratio:.3f}, "
        f"outside the [0.5, 2] acceptance band"
    )
    return {
        "case": name,
        "io_model": kind,
        "wall_s": wall_s,
        "n_chunks": n_chunks,
        "store_read_bytes": ctr.store_read_bytes,
        "store_write_bytes": ctr.store_write_bytes,
        "staging_write_bytes": staged_bytes,
        "factor_write_bytes": ctr.store_write_bytes - staged_bytes,
        "source_read_words": extra_words,
        "measured_words": measured_words,
        "predicted_words": predicted,
        "measured_over_predicted": ratio,
        "ru_maxrss_bytes": _maxrss_bytes(),
    }


def _run_tsqr(G):
    with counting() as c:
        t0 = time.perf_counter()
        f = tsqr_ooc(SOURCE, memory_budget=BUDGET, n_workers=N_WORKERS)
        wall = time.perf_counter() - t0
    try:
        RtR = f.R.T @ f.R
        assert np.allclose(RtR, G, rtol=1e-6, atol=1e-6 * np.abs(G).max()), (
            "tsqr_ooc: R fails the Gram identity R'R = A'A"
        )
        row = _traffic_row("tsqr_ooc", "ca_flat", wall, c, len(f.chunks), PANEL_BYTES)
    finally:
        f.destroy()
    return row


def _run_tslu():
    with counting() as c:
        t0 = time.perf_counter()
        f = tslu_ooc(SOURCE, memory_budget=BUDGET, n_workers=N_WORKERS)
        wall = time.perf_counter() - t0
    try:
        perm = piv_to_perm(f.piv, M)
        U = np.triu(f.lu_rows(0, N))
        r0 = (M // 2 // GEN_STEP) * GEN_STEP  # sampled window below the pivot block
        Lw = f.lu_rows(r0, r0 + N)
        rows = np.empty((N, N))
        for i in range(N):
            src = int(perm[r0 + i])
            rows[i] = _fill(src, src + 1)[0]
        assert np.allclose(Lw @ U, rows), "tslu_ooc: PA != LU on sampled window"
        row = _traffic_row("tslu_ooc", "ca_flat", wall, c, len(f.chunks), PANEL_BYTES)
    finally:
        f.destroy()
    return row


def _run_direct(G):
    # R-only: the read-once floor — no store traffic at all.
    with counting() as c:
        t0 = time.perf_counter()
        d = direct_tsqr(SOURCE, memory_budget=BUDGET)
        wall = time.perf_counter() - t0
    assert c.store_read_bytes == 0 and c.store_write_bytes == 0, (
        "direct_tsqr (R-only) must not touch the store"
    )
    assert np.allclose(d.R.T @ d.R, G, rtol=1e-6, atol=1e-6 * np.abs(G).max()), (
        "direct_tsqr: R fails the Gram identity"
    )
    r_only = _traffic_row("direct_tsqr", "direct_tsqr", wall, c, 0, 0, extra_words=M * N)

    # want_q: per-block Q1 written, re-read and rewritten by stage two.
    with counting() as c:
        t0 = time.perf_counter()
        dq = direct_tsqr(SOURCE, memory_budget=BUDGET, want_q=True)
        wall = time.perf_counter() - t0
    try:
        r0 = (M // 3 // GEN_STEP) * GEN_STEP
        qw = dq.q_rows(r0, r0 + N)
        assert np.allclose(qw @ dq.R, _fill(r0, r0 + N)), (
            "direct_tsqr(want_q): Q R != A on sampled window"
        )
        with_q = _traffic_row(
            "direct_tsqr_q", "direct_tsqr_q", wall, c, 0, 0, extra_words=M * N
        )
        # q_rows probe traffic is part of the measurement; it is N*N words.
    finally:
        dq.destroy()
    return r_only, with_q


def _parity_rows():
    """Bitwise parity with the in-memory drivers on an overlapping size."""
    m0, n0, tr0 = 6000, N, 8
    A = np.random.default_rng(5).standard_normal((m0, n0))
    f_mem = tsqr(A, tr=tr0, tree=TreeKind.FLAT)
    with tsqr_ooc(A, tr=tr0) as f_ooc:
        qr_exact = bool(np.array_equal(f_mem.R, f_ooc.R))
    lu_mem, piv_mem = tslu(A, tr=tr0, tree=TreeKind.FLAT)
    with tslu_ooc(A, tr=tr0) as res:
        lu_exact = bool(
            np.array_equal(lu_mem, res.lu()) and np.array_equal(piv_mem, res.piv)
        )
    assert qr_exact, "tsqr_ooc is not bitwise identical to in-memory tsqr"
    assert lu_exact, "tslu_ooc is not bitwise identical to in-memory tslu"
    return {"shape": [m0, n0], "tr": tr0, "tsqr_bitwise": qr_exact, "tslu_bitwise": lu_exact}


def test_outofcore_report(save_result):
    assert PANEL_BYTES >= 10 * BUDGET, "panel must be >= 10x the memory budget"
    parity = _parity_rows()
    G = _gram()
    rows = [_run_tsqr(G), _run_tslu(), *_run_direct(G)]

    doc = {
        "bench": "outofcore",
        "config": {
            "m": M,
            "n": N,
            "panel_bytes": PANEL_BYTES,
            "memory_budget_bytes": BUDGET,
            "panel_over_budget": PANEL_BYTES / BUDGET,
            "n_workers": N_WORKERS,
            "smoke": SMOKE,
            "cpu_count": os.cpu_count() or 1,
            "store": "mmap",
        },
        "parity": parity,
        "cases": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_outofcore.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"Out-of-core panel {M}x{N} ({PANEL_BYTES / (1 << 20):.0f} MiB) under a "
        f"{BUDGET / (1 << 20):.0f} MiB budget ({PANEL_BYTES / BUDGET:.1f}x out of core, "
        f"{N_WORKERS} workers, mmap store)",
        f"{'case':<16}{'wall s':>8}{'chunks':>8}{'read MiB':>10}{'write MiB':>10}"
        f"{'meas Mw':>9}{'pred Mw':>9}{'ratio':>7}{'rss MiB':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['case']:<16}{r['wall_s']:>8.2f}{r['n_chunks']:>8}"
            f"{r['store_read_bytes'] / (1 << 20):>10.1f}"
            f"{r['store_write_bytes'] / (1 << 20):>10.1f}"
            f"{r['measured_words'] / 1e6:>9.1f}{r['predicted_words'] / 1e6:>9.1f}"
            f"{r['measured_over_predicted']:>7.2f}"
            f"{r['ru_maxrss_bytes'] / (1 << 20):>9.0f}"
        )
    lines.append(
        f"parity {parity['shape'][0]}x{parity['shape'][1]}: "
        f"tsqr bitwise={parity['tsqr_bitwise']} tslu bitwise={parity['tslu_bitwise']}"
    )
    save_result("bench_outofcore", "\n".join(lines))
