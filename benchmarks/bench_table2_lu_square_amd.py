"""Table II: LU GFLOP/s on square matrices, AMD 16-core model.

Paper claims checked: ACML_dgetrf is faster than CALU for m=n <= 2000,
CALU outperforms ACML from m=n >= 3000, and CALU is at least on par
with PLASMA at every size on this machine.
"""

from repro.bench.experiments import table2


def test_table2(benchmark, save_result):
    t = benchmark.pedantic(table2, rounds=1, iterations=1)
    save_result("table2", t.format())

    acml = dict(zip(t.row_labels, t.column("ACML_dgetrf")))
    plasma = dict(zip(t.row_labels, t.column("PLASMA_dgetrf")))
    best_calu = {
        n: max(
            t.cell(n, f"CALU(Tr={tr})") for tr in (1, 2, 4, 8, 16)
        )
        for n in t.row_labels
    }

    # ACML wins small, CALU wins from 3000 (paper's crossover).
    assert acml["1000"] > best_calu["1000"]
    assert acml["2000"] > best_calu["2000"] * 0.95
    for n in ("3000", "4000", "5000"):
        assert best_calu[n] > acml[n]

    # CALU at least competitive with PLASMA everywhere on this machine.
    for n in t.row_labels:
        assert best_calu[n] > plasma[n] * 0.95
