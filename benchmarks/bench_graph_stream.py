"""Streaming graph programs: build cost off the critical path, bounded live set.

ISSUE 4's acceptance benchmark.  Two questions:

* **Time** — eagerly materializing the task graph puts its construction
  on the critical path before the first kernel runs; streaming emits
  panel windows as predecessors complete, overlapping construction with
  execution.  The numeric threaded path must show **no slowdown >5%**
  (it usually shows a small win equal to the build time).
* **Space** — the scheduler's working set.  An eager run holds every
  task live from the start (``peak_live_tasks == n_tasks``); a streamed
  run is bounded by the look-ahead window: only windows ``W .. W+d+1``
  can hold unfinished tasks when the lowest incomplete window is ``W``.

Cases: square CALU (the paper's Table 1 regime) and tall-skinny CALU
(the Figure 5 regime, where panels dominate), plus a paper-scale
*symbolic* CAQR graph through the simulator where the live-set bound
matters most.  Results land in ``results/BENCH_graph_stream.json`` and
``results/bench_graph_stream.txt``.

Set ``GRAPH_STREAM_SMOKE=1`` to run tiny shapes with relaxed timing
gates (CI smoke).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.calu import calu, calu_program
from repro.core.caqr import caqr_program
from repro.core.layout import BlockLayout
from repro.core.priorities import lookahead_depth
from repro.core.trees import TreeKind
from repro.machine.presets import generic
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.threaded import ThreadedExecutor

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = bool(os.environ.get("GRAPH_STREAM_SMOKE"))
BEST_OF = 3 if SMOKE else 5
# name -> (m, n, b, tr)
CASES = (
    [("square", 160, 160, 32, 4), ("tall-skinny", 256, 32, 16, 4)]
    if SMOKE
    else [("square", 384, 384, 48, 4), ("tall-skinny", 1024, 128, 32, 8)]
)
SYM_SHAPE = (512, 256, 32) if SMOKE else (2048, 1024, 64)
# Timing gate: the ISSUE's 5% on real shapes; tiny smoke shapes are
# overhead-dominated, so CI only sanity-checks the ratio.
SLOWDOWN_GATE = 1.5 if SMOKE else 1.05


class EagerThreaded:
    """Duck-typed wrapper: the driver materializes the full graph first,
    putting construction on the critical path (the pre-streaming flow),
    then runs it on the same engine-backed thread pool."""

    def __init__(self, n_workers: int):
        self.inner = ThreadedExecutor(n_workers)

    def run(self, graph, journal=None):
        return self.inner.run(graph)


def _paired_best(fns, n=BEST_OF):
    """Interleaved best-of-*n* so machine drift biases no configuration."""
    best = [float("inf")] * len(fns)
    out = [None] * len(fns)
    for _ in range(n):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            out[i] = fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, out


def _window_bound(m, n, b, tr, depth: int) -> tuple[int, list[int]]:
    """Max tasks live under look-ahead *depth*: the largest run of
    ``depth + 2`` consecutive windows (windows below the lowest
    incomplete one are fully done; those above ``W + depth + 1`` are
    unemitted).  Window sizes come from a symbolic build of the same
    shape (task structure is identical to the numeric one)."""
    program, _ = calu_program(BlockLayout(m, n, b), tr, TreeKind.BINARY)
    program.materialize()
    sizes = [end - start for start, end in program.windows]
    width = depth + 2
    bound = max(sum(sizes[i : i + width]) for i in range(len(sizes)))
    return bound, sizes


def _run_case(name, m, n, b, tr):
    A = np.random.default_rng(17).standard_normal((m, n))
    depth = lookahead_depth()

    # Build cost alone: materializing the full numeric program.
    build_s, _ = _paired_best(
        [lambda: calu_program(BlockLayout(m, n, b), tr, TreeKind.BINARY, A=A.copy())[0].materialize()]
    )

    calu(A, b=b, tr=tr)  # warm caches and thread machinery
    (eager_s, stream_s), (f_eager, f_stream) = _paired_best(
        [
            lambda: calu(A, b=b, tr=tr, executor=EagerThreaded(4)),
            lambda: calu(A, b=b, tr=tr, executor=ThreadedExecutor(4)),
        ]
    )
    np.testing.assert_array_equal(f_stream.lu, f_eager.lu)
    np.testing.assert_array_equal(f_stream.piv, f_eager.piv)

    st_eager, st_stream = f_eager.trace.stats, f_stream.trace.stats
    bound, _sizes = _window_bound(m, n, b, tr, depth)
    return {
        "case": name,
        "shape": [m, n],
        "b": b,
        "tr": tr,
        "lookahead": depth,
        "n_tasks": st_stream["n_tasks"],
        "build_s": build_s[0],
        "eager": {
            "run_s": eager_s,
            "peak_live_tasks": st_eager["peak_live_tasks"],
        },
        "stream": {
            "run_s": stream_s,
            "emit_s": st_stream["emit_seconds"],
            "peak_live_tasks": st_stream["peak_live_tasks"],
            "windows_emitted": st_stream["windows_emitted"],
            "n_windows": st_stream["n_windows"],
        },
        "peak_live_bound": bound,
        "slowdown": stream_s / eager_s,
    }


def _run_symbolic():
    m, n, b = SYM_SHAPE
    layout = BlockLayout(m, n, b)
    mach = generic(8)

    eager_graph = caqr_program(layout, 4, TreeKind.FLAT)[0].materialize()
    t_eager = SimulatedExecutor(mach).run(eager_graph)
    program = caqr_program(layout, 4, TreeKind.FLAT)[0]
    t_stream = SimulatedExecutor(mach).run(program)
    assert len(t_stream.records) == len(t_eager.records)
    return {
        "case": "symbolic-caqr",
        "shape": [m, n],
        "b": b,
        "n_tasks": t_stream.stats["n_tasks"],
        "eager": {"peak_live_tasks": t_eager.stats["peak_live_tasks"]},
        "stream": {
            "peak_live_tasks": t_stream.stats["peak_live_tasks"],
            "windows_emitted": t_stream.stats["windows_emitted"],
        },
    }


def test_graph_stream_report(save_result):
    rows = [_run_case(*case) for case in CASES]
    sym = _run_symbolic()

    doc = {
        "bench": "graph_stream",
        "config": {
            "best_of": BEST_OF,
            "smoke": SMOKE,
            "lookahead": lookahead_depth(),
            "slowdown_gate": SLOWDOWN_GATE,
        },
        "cases": rows,
        "symbolic": sym,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_graph_stream.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"Streaming vs eager graph construction (best of {BEST_OF}, "
        f"lookahead={lookahead_depth()})",
        f"{'case':<14}{'tasks':>7}{'build':>9}{'eager':>9}{'stream':>9}"
        f"{'ratio':>7}{'live(e)':>9}{'live(s)':>9}{'bound':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['case']:<14}{r['n_tasks']:>7}{r['build_s']:>9.4f}"
            f"{r['eager']['run_s']:>9.4f}{r['stream']['run_s']:>9.4f}"
            f"{r['slowdown']:>7.3f}{r['eager']['peak_live_tasks']:>9}"
            f"{r['stream']['peak_live_tasks']:>9}{r['peak_live_bound']:>7}"
        )
    lines.append(
        f"{sym['case']:<14}{sym['n_tasks']:>7}{'--':>9}{'--':>9}{'--':>9}{'--':>7}"
        f"{sym['eager']['peak_live_tasks']:>9}{sym['stream']['peak_live_tasks']:>9}{'--':>7}"
    )
    save_result("bench_graph_stream", "\n".join(lines))

    for r in rows:
        # Eager runs hold the whole graph live; streamed runs stay
        # within the look-ahead window.
        assert r["eager"]["peak_live_tasks"] == r["n_tasks"]
        assert r["stream"]["peak_live_tasks"] <= r["peak_live_bound"]
        assert r["stream"]["peak_live_tasks"] < r["n_tasks"]
        assert r["stream"]["windows_emitted"] == r["stream"]["n_windows"]
        # The ISSUE's gate: streaming must not slow the numeric path.
        assert r["slowdown"] <= SLOWDOWN_GATE, (
            f"{r['case']}: streamed run {r['stream']['run_s']:.4f}s vs eager "
            f"{r['eager']['run_s']:.4f}s exceeds the {SLOWDOWN_GATE:.0%} gate"
        )
    assert sym["stream"]["peak_live_tasks"] < sym["eager"]["peak_live_tasks"]
    assert sym["eager"]["peak_live_tasks"] == sym["n_tasks"]
