"""Fusion + batched dispatch on the small-tile regime (ISSUE 9).

The paper's tall-skinny cases decompose into many microsecond tasks, so
per-task dispatch — one pipe round-trip per descriptor on the process
backend — dominates the kernels.  This benchmark measures exactly that
before/after the fusion rewrite on the 384x32 regime:

* **round-trips**: worker pipe round-trips per factorization, counted
  by :mod:`repro.counters`, with fusion off vs on.  The acceptance gate
  (``>= 2x`` fewer with fusion + batching) asserts unconditionally —
  it is a property of the rewrite, not of the host.
* **wall time**: threaded vs process vs ``executor="auto"``.  The
  autotuner must never be more than 5% slower than the best fixed
  backend on any benchmarked point (it runs the same plan the winner
  runs, plus one memoized symbolic-graph costing).
* **bitwise fidelity**: fused and unfused factors agree bit-for-bit on
  every case — always gated.

Results land in ``results/BENCH_dispatch.json`` and
``results/bench_dispatch.txt``.  The recorded autotuner decisions
(backend, ``max_ops``, predicted makespans, measured round-trip price)
make the choice auditable from the artifact alone.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.counters import counting
from repro.machine.autotune import autotune, calibrate_pipe
from repro.runtime.process import ProcessExecutor
from repro.runtime.threaded import ThreadedExecutor

RESULTS_DIR = Path(__file__).parent / "results"

BEST_OF = 5
N_WORKERS = 4
CPU_COUNT = os.cpu_count() or 1
FUSE = 8

# name -> (algo, m, n, b, tr): the ISSUE's small-tile gap regime.
CASES = [
    ("lu-tall-384x32", "lu", 384, 32, 32, 4),
    ("qr-tall-384x32", "qr", 384, 32, 32, 4),
]


def _factor(algo):
    return calu if algo == "lu" else caqr


def _assert_bitwise(algo, ref, got, label):
    if algo == "lu":
        np.testing.assert_array_equal(got.lu, ref.lu, err_msg=label)
        np.testing.assert_array_equal(got.piv, ref.piv, err_msg=label)
    else:
        np.testing.assert_array_equal(got.R, ref.R, err_msg=label)
        np.testing.assert_array_equal(got.packed, ref.packed, err_msg=label)


def _count_roundtrips(algo, A, b, tr, fuse):
    factor = _factor(algo)
    with ProcessExecutor(N_WORKERS) as ex:
        with counting() as c:
            f = factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=ex, fuse=fuse)
    return c.roundtrips, f


def _paired_best(fns, n=BEST_OF):
    """Interleaved best-of-*n* so machine drift biases no configuration."""
    best = [float("inf")] * len(fns)
    for _ in range(n):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _run_case(name, algo, m, n, b, tr):
    A = np.random.default_rng(31).standard_normal((m, n))
    factor = _factor(algo)

    # --- round-trips: fusion off vs on, same backend, same pool size --
    rt_off, f_off = _count_roundtrips(algo, A, b, tr, fuse=None)
    rt_on, f_on = _count_roundtrips(algo, A, b, tr, fuse=FUSE)
    _assert_bitwise(algo, f_off, f_on, f"{name}: fused vs unfused (process)")
    assert rt_off >= 2 * rt_on, (
        f"{name}: fusion+batching must at least halve worker pipe "
        f"round-trips, got {rt_off} -> {rt_on}"
    )

    # --- wall time: threaded vs process vs auto ----------------------
    decision = autotune(algo, m, n, b=b, tr=tr, tree=TreeKind.BINARY)
    threaded = ThreadedExecutor(N_WORKERS)
    process = ProcessExecutor(N_WORKERS)
    try:
        # Warm every pool and the autotuner cache outside the timed region.
        ref = factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=threaded)
        factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=process)
        f_auto = factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor="auto")
        _assert_bitwise(algo, ref, f_auto, f"{name}: auto vs threaded")
        thr_s, proc_s, auto_s = _paired_best(
            [
                lambda: factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=threaded),
                lambda: factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=process),
                lambda: factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor="auto"),
            ]
        )
    finally:
        process.close()

    best_fixed = min(thr_s, proc_s)
    assert auto_s <= 1.05 * best_fixed, (
        f"{name}: executor='auto' ({auto_s:.4f}s) is more than 5% slower "
        f"than the best fixed backend ({best_fixed:.4f}s)"
    )

    return {
        "case": name,
        "algo": algo,
        "shape": [m, n],
        "b": b,
        "tr": tr,
        "n_workers": N_WORKERS,
        "roundtrips_unfused": rt_off,
        "roundtrips_fused": rt_on,
        "roundtrip_reduction": rt_off / max(1, rt_on),
        "fuse": FUSE,
        "threaded_s": thr_s,
        "process_s": proc_s,
        "auto_s": auto_s,
        "auto_vs_best_fixed": auto_s / best_fixed,
        "decision": decision.to_dict(),
    }


def test_dispatch_report(save_result):
    pipe = calibrate_pipe()  # warm + record the measured dispatch price
    rows = [_run_case(*case) for case in CASES]

    doc = {
        "bench": "dispatch",
        "config": {
            "best_of": BEST_OF,
            "n_workers": N_WORKERS,
            "cpu_count": CPU_COUNT,
            "fuse": FUSE,
            "pipe_roundtrip_s": pipe.roundtrip_s,
            "pipe_spawn_s": pipe.spawn_s,
            "pipe_measured": pipe.measured,
        },
        "cases": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dispatch.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"Fusion + batched dispatch, 384x32 regime (best of {BEST_OF}, "
        f"{N_WORKERS} workers, {CPU_COUNT} cpus, "
        f"pipe roundtrip {pipe.roundtrip_s * 1e6:.1f}us)",
        f"{'case':<18}{'rt off':>8}{'rt on':>7}{'reduce':>8}"
        f"{'threaded':>10}{'process':>10}{'auto':>9}{'auto/best':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r['case']:<18}{r['roundtrips_unfused']:>8}{r['roundtrips_fused']:>7}"
            f"{r['roundtrip_reduction']:>7.1f}x"
            f"{r['threaded_s']:>10.4f}{r['process_s']:>10.4f}{r['auto_s']:>9.4f}"
            f"{r['auto_vs_best_fixed']:>11.3f}"
        )
    for r in rows:
        d = r["decision"]
        lines.append(
            f"  {r['case']}: autotuner chose {d['backend']} "
            f"max_ops={d['max_ops']} ({d['reason']})"
        )
    save_result("bench_dispatch", "\n".join(lines))
