"""Table I: LU GFLOP/s on square matrices, Intel 8-core model.

Paper claims checked: MKL_dgetrf wins for m=n < 5000 and the gap closes
as the size grows (CALU within a few percent at 10^4, where the paper's
CALU(Tr=2) slightly edges MKL); CALU outperforms PLASMA from n > 3000;
Tr > 1 beats Tr = 1.
"""

from repro.bench.experiments import table1


def test_table1(benchmark, save_result):
    t = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_result("table1", t.format())

    mkl = dict(zip(t.row_labels, t.column("MKL_dgetrf")))
    plasma = dict(zip(t.row_labels, t.column("PLASMA_dgetrf")))
    calu4 = dict(zip(t.row_labels, t.column("CALU(Tr=4)")))
    calu2 = dict(zip(t.row_labels, t.column("CALU(Tr=2)")))
    calu1 = dict(zip(t.row_labels, t.column("CALU(Tr=1)")))

    # MKL wins at small square sizes...
    for n in ("1000", "2000", "3000"):
        assert mkl[n] > calu4[n]
    # ...but the gap closes with size: near-parity at 5000 and CALU(Tr=2)
    # edging MKL at 10^4, the paper's crossover.
    assert mkl["5000"] / calu2["5000"] < 1.05
    assert calu2["10000"] >= mkl["10000"] * 0.99
    assert (mkl["1000"] / calu4["1000"]) > (mkl["10000"] / calu4["10000"])

    # CALU > PLASMA for n > 3000 (paper), and Tr>1 helps.
    for n in ("4000", "5000", "10000"):
        assert calu4[n] > plasma[n]
        assert calu2[n] > calu1[n]
