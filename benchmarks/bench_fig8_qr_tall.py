"""Figure 8: QR GFLOP/s on tall-skinny matrices, m=1e5, Intel 8-core model.

Paper claims checked: TSQR is the best method on tall-skinny matrices —
~5.3x over MKL_dgeqrf at n=200, several times over PLASMA at small n —
and loses its lead as n grows (PLASMA catches TSQR around n=1000);
CAQR beats MKL_dgeqrf at larger n and dgeqr2 by ~20x.
"""

from repro.bench.experiments import fig8


def test_fig8(benchmark, save_result):
    t = benchmark.pedantic(fig8, rounds=1, iterations=1)
    save_result("fig8", t.format())

    tsqr = dict(zip(t.row_labels, t.column("TSQR(Tr=8)")))
    caqr = dict(zip(t.row_labels, t.column("CAQR(Tr=4)")))
    geqrf = dict(zip(t.row_labels, t.column("MKL_dgeqrf")))
    geqr2 = dict(zip(t.row_labels, t.column("MKL_dgeqr2")))
    plasma = dict(zip(t.row_labels, t.column("PLASMA_dgeqrf")))

    # Peak TSQR advantage near n=200 (paper: 5.3x; accept 3.5-7x).
    assert 3.5 < tsqr["200"] / geqrf["200"] < 7.0

    # TSQR far ahead of PLASMA at tiny n (paper: 6.7x at n=10).
    assert tsqr["10"] / plasma["10"] > 4.0

    # PLASMA catches TSQR by n=1000 (paper crossover).
    assert plasma["1000"] > 0.85 * tsqr["1000"]
    # ...whereas at n=200 TSQR dominates PLASMA by a wide margin.
    assert tsqr["200"] / plasma["200"] > 3.0

    # CAQR: ~1.6x over dgeqrf at n=500-1000, ~20x over dgeqr2 (bands).
    assert caqr["500"] > 1.2 * geqrf["500"]
    assert caqr["1000"] > 1.2 * geqrf["1000"]
    assert caqr["500"] / geqr2["500"] > 10.0
