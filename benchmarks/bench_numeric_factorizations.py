"""Real-time benchmarks of the full numeric factorizations.

Moderate sizes (the host is not the paper's testbed — paper-scale
performance is reproduced by the simulated benchmarks instead); these
track the wall-clock health of the numeric code paths end to end.
"""

import numpy as np
import pytest

from repro.baselines.tiled_lu import tiled_lu
from repro.baselines.tiled_qr import tiled_qr
from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr


@pytest.fixture(scope="module")
def square():
    return np.random.default_rng(0).standard_normal((384, 384))


@pytest.fixture(scope="module")
def tall():
    return np.random.default_rng(1).standard_normal((8000, 64))


def test_calu_square(benchmark, square):
    f = benchmark(lambda: calu(square, b=64, tr=4))
    assert np.isfinite(f.lu).all()


def test_caqr_square(benchmark, square):
    f = benchmark(lambda: caqr(square, b=64, tr=4))
    assert np.isfinite(f.packed).all()


def test_tslu_tall(benchmark, tall):
    lu, piv = benchmark(lambda: tslu(tall, tr=8))
    assert len(piv) == 64


def test_tsqr_tall_flat(benchmark, tall):
    f = benchmark(lambda: tsqr(tall, tr=8, tree=TreeKind.FLAT))
    assert f.R.shape == (64, 64)


def test_tsqr_tall_binary(benchmark, tall):
    f = benchmark(lambda: tsqr(tall, tr=8, tree=TreeKind.BINARY))
    assert f.R.shape == (64, 64)


def test_tiled_lu_square(benchmark, square):
    f = benchmark(lambda: tiled_lu(square, nb=64))
    assert np.isfinite(f.packed).all()


def test_tiled_qr_square(benchmark, square):
    f = benchmark(lambda: tiled_qr(square, nb=64))
    assert np.isfinite(f.packed).all()
