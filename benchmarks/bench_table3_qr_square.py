"""Table III: QR GFLOP/s on square matrices, Intel 8-core model.

Paper claims checked: on square matrices the ordering reverses — MKL is
the most efficient; CAQR trails MKL (clearly at n=1000, within ~15 % by
n=5000); CAQR(Tr=1) is the weakest CAQR configuration at small sizes.
"""

from repro.bench.experiments import table3


def test_table3(benchmark, save_result):
    t = benchmark.pedantic(table3, rounds=1, iterations=1)
    save_result("table3", t.format())

    mkl = dict(zip(t.row_labels, t.column("MKL_dgeqrf")))
    best_caqr = {
        n: max(t.cell(n, f"CAQR(Tr={tr})") for tr in (1, 2, 4, 8)) for n in t.row_labels
    }

    # MKL leads CAQR at small square sizes; the gap narrows with size.
    assert mkl["1000"] > best_caqr["1000"]
    assert mkl["2000"] > best_caqr["2000"] * 0.95
    gap_small = mkl["1000"] / best_caqr["1000"]
    gap_big = mkl["5000"] / best_caqr["5000"]
    assert gap_big < gap_small

    # All configurations productive.
    assert (t.values > 0).all()
