"""Real-time microbenchmarks of the sequential kernel substrate.

Unlike the simulated paper-artifact benchmarks, these time the actual
numeric kernels on the host — useful for tracking regressions in the
kernel layer itself (the paper's observation that recursive kernels
beat BLAS2 panels holds for our implementations too, since the
recursion turns the work into large numpy matmuls).
"""

import numpy as np
import pytest

from repro.kernels.blas import gemm
from repro.kernels.lu import getf2, rgetf2
from repro.kernels.qr import geqr2, geqr3
from repro.kernels.structured import tpqrt


@pytest.fixture
def panel():
    return np.random.default_rng(0).standard_normal((2000, 64))


def test_getf2_panel(benchmark, panel):
    benchmark(lambda: getf2(panel.copy()))


def test_rgetf2_panel(benchmark, panel):
    benchmark(lambda: rgetf2(panel.copy()))


def test_geqr2_panel(benchmark, panel):
    benchmark(lambda: geqr2(panel.copy()))


def test_geqr3_panel(benchmark, panel):
    benchmark(lambda: geqr3(panel.copy()))


def test_gemm_update(benchmark):
    rng = np.random.default_rng(1)
    C = rng.standard_normal((1000, 256))
    A = rng.standard_normal((1000, 64))
    B = rng.standard_normal((64, 256))
    benchmark(lambda: gemm(C.copy(), A, B))


def test_tpqrt_merge(benchmark):
    rng = np.random.default_rng(2)
    R1 = np.triu(rng.standard_normal((64, 64)))
    R2 = np.triu(rng.standard_normal((64, 64)))
    benchmark(lambda: tpqrt(R1.copy(), R2.copy(), bottom_triangular=True))


def test_recursive_lu_faster_than_blas2_on_tall_panels(benchmark):
    """The paper's kernel-choice rationale, measured for real."""
    import time

    rng = np.random.default_rng(3)
    A = rng.standard_normal((20000, 128))

    def once():
        t0 = time.perf_counter()
        rgetf2(A.copy())
        t_rec = time.perf_counter() - t0
        t0 = time.perf_counter()
        getf2(A.copy())
        t_blas2 = time.perf_counter() - t0
        return t_rec, t_blas2

    t_rec, t_blas2 = benchmark.pedantic(once, rounds=1, iterations=1)
    assert t_rec < t_blas2, "recursive LU should beat the BLAS2 panel kernel"
