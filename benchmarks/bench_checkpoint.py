"""Checkpoint/restart cost model: fault-free overhead and resume payoff.

Two questions decide whether checkpointing can stay on by default:

* What does an armed :class:`Checkpoint` cost when nothing goes wrong?
  The acceptance target is <5% on a fault-free CALU with the in-memory
  store (the file store's serialization cost is reported alongside,
  uncapped).
* What does a crash cost *with* a checkpoint versus without one?  The
  resume-vs-scratch comparison at several crash depths quantifies the
  work a snapshot saves.

Results land in ``results/BENCH_checkpoint.json`` (machine-readable)
and ``results/bench_checkpoint.txt`` (formatted table).
"""

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.calu import calu
from repro.resilience.checkpoint import Checkpoint, FileStore, MemoryStore
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.threaded import ThreadedExecutor

RESULTS_DIR = Path(__file__).parent / "results"

SHAPE = (512, 512)
B, TR = 64, 4
BEST_OF = 5


class _CrashAfter:
    """Executor wrapper raising after *n* task bodies (simulated crash)."""

    def __init__(self, n: int):
        self.inner = ThreadedExecutor(4)
        self.n = n
        self.count = 0
        self._lock = threading.Lock()

    def run(self, graph, journal=None):
        for t in graph.tasks:
            fn = t.fn
            if fn is None:
                continue

            def wrapped(fn=fn, name=t.name):
                with self._lock:
                    self.count += 1
                    if self.count > self.n:
                        raise RuntimeError(f"bench crash in {name}")
                fn()

            t.fn = wrapped
        if journal is not None:
            return self.inner.run(graph, journal=journal)
        return self.inner.run(graph)


def _best_of(fn, n=BEST_OF):
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _paired_best(fns, n=BEST_OF):
    """Best-of-*n* for several configurations, interleaved per round so
    machine drift (warmup, other processes) biases none of them."""
    best = [float("inf")] * len(fns)
    for _ in range(n):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def square():
    return np.random.default_rng(11).standard_normal(SHAPE)


def test_calu_checkpoint_off(benchmark, square):
    f = benchmark(lambda: calu(square, b=B, tr=TR))
    assert np.isfinite(f.lu).all()


def test_calu_checkpoint_memory(benchmark, square):
    f = benchmark(lambda: calu(square, b=B, tr=TR, checkpoint=Checkpoint(MemoryStore())))
    assert np.isfinite(f.lu).all()


def test_calu_checkpoint_file(benchmark, square, tmp_path):
    def run():
        store = FileStore(tmp_path / "ckpt")
        f = calu(square, b=B, tr=TR, checkpoint=Checkpoint(store))
        store.clear()
        return f

    f = benchmark(run)
    assert np.isfinite(f.lu).all()


def test_checkpoint_report(save_result, tmp_path):
    A = np.random.default_rng(11).standard_normal(SHAPE)
    n_tasks = len(calu(A, b=B, tr=TR).trace.records)

    def run_file_store():
        store = FileStore(tmp_path / "fs")
        calu(A, b=B, tr=TR, checkpoint=Checkpoint(store))
        store.clear()

    calu(A, b=B, tr=TR)  # warm caches and the thread machinery
    base, mem, filed = _paired_best(
        [
            lambda: calu(A, b=B, tr=TR),
            lambda: calu(A, b=B, tr=TR, checkpoint=Checkpoint(MemoryStore())),
            run_file_store,
        ],
        n=7,
    )
    mem_pct = 100.0 * (mem - base) / base
    file_pct = 100.0 * (filed - base) / base

    # Resume payoff: crash at a fraction of the task count, then time
    # the checkpointed resume against a from-scratch rerun.
    resume_rows = []
    for frac in (0.25, 0.5, 0.75):
        crash_at = max(1, int(n_tasks * frac))
        best_resume = float("inf")
        for _ in range(3):
            ckpt = Checkpoint(MemoryStore())
            try:
                calu(A, b=B, tr=TR, executor=_CrashAfter(crash_at), checkpoint=ckpt)
            except RuntimeFailure:
                pass
            t0 = time.perf_counter()
            f = calu(A, b=B, tr=TR, checkpoint=ckpt)
            best_resume = min(best_resume, time.perf_counter() - t0)
            assert np.isfinite(f.lu).all()
        resume_rows.append(
            {
                "completed_frac": frac,
                "crash_after_tasks": crash_at,
                "scratch_s": base,
                "resume_s": best_resume,
                "speedup": base / best_resume,
            }
        )

    doc = {
        "bench": "checkpoint",
        "config": {
            "shape": list(SHAPE),
            "b": B,
            "tr": TR,
            "best_of": BEST_OF,
            "n_tasks": n_tasks,
        },
        "fault_free": {
            "base_s": base,
            "memory_store_s": mem,
            "memory_store_overhead_pct": mem_pct,
            "file_store_s": filed,
            "file_store_overhead_pct": file_pct,
        },
        "resume": resume_rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_checkpoint.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"Checkpoint overhead and resume payoff ({SHAPE[0]}x{SHAPE[1]}, "
        f"b={B}, tr={TR}, best of {BEST_OF})",
        f"{'configuration':<30}{'seconds':>10}{'overhead':>10}",
        f"{'no checkpoint (base)':<30}{base:>10.4f}{'--':>10}",
        f"{'MemoryStore, every panel':<30}{mem:>10.4f}{mem_pct:>+9.1f}%",
        f"{'FileStore, every panel':<30}{filed:>10.4f}{file_pct:>+9.1f}%",
        "",
        f"{'crash depth':<30}{'scratch':>10}{'resume':>10}{'speedup':>10}",
    ]
    for row in resume_rows:
        lines.append(
            f"{int(100 * row['completed_frac']):>3d}% of tasks done"
            f"{'':<13}{row['scratch_s']:>10.4f}{row['resume_s']:>10.4f}"
            f"{row['speedup']:>9.2f}x"
        )
    save_result("bench_checkpoint", "\n".join(lines))

    # Acceptance: in-memory checkpointing is <5% on a fault-free run,
    # and resuming a mostly-done run beats starting over.
    assert mem_pct < 5.0
    assert resume_rows[-1]["speedup"] > 1.0
