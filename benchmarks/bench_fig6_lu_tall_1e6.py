"""Figure 6: LU GFLOP/s on tall-skinny matrices, m=1e6, Intel 8-core model.

Paper claims checked: the headline speedups — CALU(Tr=8) up to ~2.3x
over MKL_dgetrf (best near n=500), ~10x over MKL_dgetf2 at n=100
(8.3x for Tr=4), and ~4x over dgetf2 / 2x over dgetrf already at n=25.
"""

from repro.bench.experiments import fig6


def test_fig6(benchmark, save_result):
    t = benchmark.pedantic(fig6, rounds=1, iterations=1)
    save_result("fig6", t.format())

    calu8 = dict(zip(t.row_labels, t.column("CALU(Tr=8)")))
    calu4 = dict(zip(t.row_labels, t.column("CALU(Tr=4)")))
    getrf = dict(zip(t.row_labels, t.column("MKL_dgetrf")))
    getf2 = dict(zip(t.row_labels, t.column("MKL_dgetf2")))

    # Headline: ~2.3x over dgetrf at n=500 (accept 1.7-3x).
    assert 1.7 < calu8["500"] / getrf["500"] < 3.0

    # ~10x over dgetf2 at n=100 (Tr=8), ~8.3x at Tr=4 (accept 6-14x).
    assert 6.0 < calu8["100"] / getf2["100"] < 14.0
    assert 5.0 < calu4["100"] / getf2["100"] < 12.0
    assert calu8["100"] > calu4["100"]

    # n=25: ~4x over dgetf2 and ~2x over dgetrf (accept generous bands).
    assert calu8["25"] / getf2["25"] > 2.5
    assert calu8["25"] / getrf["25"] > 1.3
