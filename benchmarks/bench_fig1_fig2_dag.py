"""Figures 1-2: the CALU task dependency graph and its step schedule.

Paper Section III: a matrix partitioned into 4x4 blocks with Tr=2 gives
the DAG of Figure 1; executed on 4 threads it yields Figure 2's steps,
including the look-ahead (panel K+1 tasks interleave with iteration-K
trailing updates).
"""

from repro.bench.experiments import fig1_fig2
from repro.bench.experiments import scaling


def test_fig1_fig2(benchmark, save_result):
    r = benchmark.pedantic(fig1_fig2, rounds=1, iterations=1)
    save_result("fig1_fig2", r.format())

    # Figure 1 structure: P/L/U/S task classes all present, DAG rendered.
    assert set("PLUS") <= set(r.kind_counts)
    assert r.dot.startswith("digraph")

    # Figure 2 structure: never more than 4 concurrent tasks; the first
    # step is the two TSLU leaves; look-ahead makes panel-1 tasks appear
    # while iteration-0 updates are still running.
    assert all(len(step) <= 4 for step in r.steps)
    assert {"P[0]leaf0", "P[0]leaf1"} == set(r.steps[0])
    flat = [(i, name) for i, step in enumerate(r.steps) for name in step]
    first_p1 = min(i for i, name in flat if name.startswith("P[1]"))
    last_s0 = max(i for i, name in flat if name.startswith("S[0]"))
    assert first_p1 <= last_s0, "look-ahead must overlap panel 1 with iteration-0 updates"


def test_scaling(benchmark, save_result):
    t = benchmark.pedantic(scaling, rounds=1, iterations=1)
    save_result("scaling", t.format())
    mkl = t.column("MKL_dgetrf")
    calu = t.column("CALU(Tr=cores)")
    # Amdahl: the vendor's serial panel caps its 16-core speedup well
    # below CALU's on a tall-skinny matrix.
    assert mkl[-1] / mkl[0] < 3.0
    assert calu[-1] / calu[0] > 5.0
