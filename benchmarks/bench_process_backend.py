"""Process backend vs threaded backend on the paper's tall-skinny cases.

ISSUE 5's acceptance benchmark.  The paper's figures 5-8 measure CALU
and CAQR on tall-skinny matrices, where panel factorizations dominate
and many small tasks stress the runtime's dispatch path.  Python
threads serialize that dispatch on the GIL; the
:class:`~repro.runtime.process.ProcessExecutor` moves kernel execution
into worker processes over a shared-memory arena, so with ``>= 4``
workers on enough physical cores the tall-skinny cases speed up.

Both backends must agree **bitwise** on every case regardless of the
machine — that assertion always gates.  The speedup assertion is only
armed when the host actually has multiple physical cores
(``os.cpu_count() >= 4``): on a 1-core container the process backend
pays IPC overhead with nothing to parallelize over, and pretending
otherwise would make the artifact dishonest.  The JSON records
``cpu_count`` so a reader can tell which regime produced the numbers.

Results land in ``results/BENCH_process_backend.json`` and
``results/bench_process_backend.txt``.  Set
``PROCESS_BACKEND_SMOKE=1`` for tiny CI shapes.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.runtime.process import ProcessExecutor
from repro.runtime.threaded import ThreadedExecutor

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = bool(os.environ.get("PROCESS_BACKEND_SMOKE"))
BEST_OF = 2 if SMOKE else 3
N_WORKERS = 4
CPU_COUNT = os.cpu_count() or 1
# Speedup is only achievable (and only asserted) with real cores to
# spread the workers over.
ASSERT_SPEEDUP = CPU_COUNT >= N_WORKERS

# name -> (algo, m, n, b, tr): the figures' tall-skinny regime, scaled
# to tractable in-repo sizes (the 2009 runs used m up to 1e6).
CASES = (
    [
        ("fig5-lu-tall", "lu", 384, 32, 16, 4),
        ("fig8-qr-tall", "qr", 384, 32, 16, 4),
    ]
    if SMOKE
    else [
        ("fig5-lu-tall", "lu", 2048, 64, 32, 4),
        ("fig6-lu-taller", "lu", 4096, 64, 32, 8),
        ("fig8-qr-tall", "qr", 2048, 64, 32, 4),
    ]
)


def _paired_best(fns, n=BEST_OF):
    """Interleaved best-of-*n* so machine drift biases no configuration."""
    best = [float("inf")] * len(fns)
    out = [None] * len(fns)
    for _ in range(n):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            out[i] = fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, out


def _run_case(name, algo, m, n, b, tr):
    A = np.random.default_rng(29).standard_normal((m, n))
    factor = calu if algo == "lu" else caqr

    # Warm both pools outside the timed region: thread machinery for the
    # threaded runs, worker processes + arena attach for the process runs
    # (the persistent pool is the whole point — spawn cost is paid once).
    threaded = ThreadedExecutor(N_WORKERS)
    process = ProcessExecutor(N_WORKERS)
    try:
        factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=threaded)
        factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=process)
        (thr_s, proc_s), (f_thr, f_proc) = _paired_best(
            [
                lambda: factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=threaded),
                lambda: factor(A, b=b, tr=tr, tree=TreeKind.BINARY, executor=process),
            ]
        )
    finally:
        process.close()

    # Bitwise agreement gates unconditionally.
    if algo == "lu":
        np.testing.assert_array_equal(f_proc.lu, f_thr.lu)
        np.testing.assert_array_equal(f_proc.piv, f_thr.piv)
    else:
        np.testing.assert_array_equal(f_proc.R, f_thr.R)
        np.testing.assert_array_equal(f_proc.packed, f_thr.packed)

    return {
        "case": name,
        "algo": algo,
        "shape": [m, n],
        "b": b,
        "tr": tr,
        "n_workers": N_WORKERS,
        "threaded_s": thr_s,
        "process_s": proc_s,
        "speedup": thr_s / proc_s,
        "n_tasks": f_proc.trace.stats["n_tasks"],
    }


def test_process_backend_report(save_result):
    rows = [_run_case(*case) for case in CASES]

    doc = {
        "bench": "process_backend",
        "config": {
            "best_of": BEST_OF,
            "smoke": SMOKE,
            "n_workers": N_WORKERS,
            "cpu_count": CPU_COUNT,
            "speedup_asserted": ASSERT_SPEEDUP,
        },
        "cases": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_process_backend.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"Process vs threaded backend, tall-skinny cases (best of {BEST_OF}, "
        f"{N_WORKERS} workers, {CPU_COUNT} cpus)",
        f"{'case':<18}{'algo':>5}{'shape':>12}{'tasks':>7}"
        f"{'threaded':>10}{'process':>10}{'speedup':>9}",
    ]
    for r in rows:
        shape = f"{r['shape'][0]}x{r['shape'][1]}"
        lines.append(
            f"{r['case']:<18}{r['algo']:>5}{shape:>12}{r['n_tasks']:>7}"
            f"{r['threaded_s']:>10.4f}{r['process_s']:>10.4f}{r['speedup']:>9.3f}"
        )
    if not ASSERT_SPEEDUP:
        lines.append(
            f"(speedup not asserted: {CPU_COUNT} cpu(s) < {N_WORKERS} workers; "
            "IPC overhead with no parallelism to buy)"
        )
    save_result("bench_process_backend", "\n".join(lines))

    if ASSERT_SPEEDUP:
        best = max(r["speedup"] for r in rows)
        assert best > 1.0, (
            f"no tall-skinny case sped up under the process backend "
            f"(best ratio {best:.3f}) despite {CPU_COUNT} cpus"
        )
