"""Figures 3-4: CALU execution diagrams, Tr=1 vs Tr=8 (1e5 x 1000, b=100).

Paper claim: with Tr=1 the panel factorization leaves cores idle; with
Tr=8 "except the very beginning and the very end of the algorithm,
there is no idle time and all the cores are kept busy".
"""

from repro.bench.experiments import fig3_fig4


def test_fig3_fig4(benchmark, save_result):
    pair = benchmark.pedantic(fig3_fig4, rounds=1, iterations=1)
    save_result("fig3_fig4", pair.format())
    # The paper's qualitative claims, quantified:
    assert pair.idle_tr1 > 0.3, "Tr=1 must show substantial idle time"
    assert pair.idle_tr8 < 0.10, "Tr=8 must keep all cores busy"
    assert pair.gflops_tr8 > 2.0 * pair.gflops_tr1
